"""Hostile-traffic differential: live == batch under adversarial load.

The live/batch equivalence contract (see ``test_live_equivalence``)
must survive traffic engineered to break it: overlapping retransmission
storms, orphan responses, malformed frames, connections that overflow
the reassembly buffer cap, floods.  Both pipelines see the identical
:mod:`repro.loadgen` stream with the *same* buffer cap, so both degrade
the same connections — every transaction either side emits must match
the other byte for byte, with zero uncaught exceptions.
"""

from repro.detection.live import LiveDecoder, OverloadPolicy
from repro.loadgen import HOSTILE, LoadGenerator, WorkloadMix
from repro.net.flows import transactions_from_packets
from repro.obs import MetricsRegistry, use_registry

#: Cap chosen below loadgen's overflow-episode payload so those
#: connections genuinely degrade in both pipelines.
MAX_BUFFERED = 32 * 1024
OVERFLOW_BYTES = 128 * 1024


def _ordered(transactions):
    return sorted(
        transactions,
        key=lambda t: (t.timestamp, t.server, t.request.uri),
    )


def _assert_identical(live, batch):
    assert len(live) == len(batch)
    for ours, theirs in zip(_ordered(live), _ordered(batch)):
        assert ours.request == theirs.request
        assert ours.response == theirs.response


def _live_decode(packets, book):
    # max_connections stays at its (high) default: connection shedding
    # is live-only policy and would legitimately diverge from batch.
    decoder = LiveDecoder(book=book, policy=OverloadPolicy(
        max_buffered_per_direction=MAX_BUFFERED,
    ))
    transactions = []
    for packet in packets:
        transactions.extend(decoder.feed(packet))
    transactions.extend(decoder.flush())
    return transactions


def _differential(mix, seed, count):
    generator = LoadGenerator(seed=seed, mix=mix, concurrency=6,
                              overflow_bytes=OVERFLOW_BYTES)
    packets = generator.capture(count)

    live_registry = MetricsRegistry()
    with use_registry(live_registry):
        live = _live_decode(packets, generator.book)
    batch_registry = MetricsRegistry()
    with use_registry(batch_registry):
        batch = transactions_from_packets(
            packets, book=generator.book, max_buffered=MAX_BUFFERED
        )
    _assert_identical(live, batch)
    return (live, live_registry.snapshot()["counters"],
            batch_registry.snapshot()["counters"])


class TestHostileDifferential:
    def test_hostile_mix_live_equals_batch(self):
        """Pure hostile stream: overlaps, orphans, overflow, garbage."""
        live, live_counters, batch_counters = _differential(
            HOSTILE, seed=17, count=5000
        )
        # The hostile patterns actually occurred — in BOTH pipelines —
        # and neither pipeline raised.
        for counters in (live_counters, batch_counters):
            assert counters["reassembly.overflows"] > 0
            assert counters["http.orphan_responses"] > 0
            assert counters["decode.errors"] > 0
        assert (live_counters["reassembly.overflows"]
                == batch_counters["reassembly.overflows"])
        assert (live_counters["http.orphan_responses"]
                == batch_counters["http.orphan_responses"])

    def test_mixed_stream_live_equals_batch(self):
        """Hostile noise interleaved with benign/exploit-kit traffic:
        degraded connections must not perturb healthy ones."""
        mix = WorkloadMix(benign=0.35, exploit_kit=0.1, http_flood=0.1,
                          slow_drip=0.05, giant_pipelined=0.1,
                          retrans_storm=0.1, malformed_burst=0.1,
                          orphan_response=0.05, overflow=0.15)
        live, live_counters, _ = _differential(mix, seed=23, count=5000)
        assert len(live) > 0  # healthy traffic still decodes
        assert live_counters["reassembly.overflows"] > 0

    def test_storm_heavy_stream_byte_identical(self):
        """Overlap-heavy: most traffic is retransmission storms."""
        mix = WorkloadMix(benign=0.1, exploit_kit=0.0, http_flood=0.0,
                          slow_drip=0.0, giant_pipelined=0.1,
                          retrans_storm=0.8, malformed_burst=0.0,
                          orphan_response=0.0, overflow=0.0)
        live, live_counters, _ = _differential(mix, seed=29, count=4000)
        assert len(live) > 0
        assert live_counters["decode.errors"] == 0
