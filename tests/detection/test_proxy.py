"""Tests for the replay drivers."""

import pytest

from repro.core.model import Trace
from repro.detection.clues import CluePolicy
from repro.detection.detector import OnTheWireDetector
from repro.detection.proxy import ProxySimulator, ReplayReport, TrafficReplay
from tests.conftest import make_txn


class TestTrafficReplay:
    def test_replays_whole_trace(self, trained_model, small_corpus):
        detector = OnTheWireDetector(trained_model)
        trace = small_corpus.benign[0]
        report = TrafficReplay(detector).run(trace)
        assert report.transactions == len(trace.transactions)

    def test_accepts_transaction_list(self, trained_model):
        detector = OnTheWireDetector(trained_model)
        report = TrafficReplay(detector).run([make_txn()])
        assert report.transactions == 1

    def test_alerts_on_infection(self, trained_model, small_corpus):
        detector = OnTheWireDetector(trained_model,
                                     policy=CluePolicy(redirect_threshold=3))
        infections = [
            t for t in small_corpus.infections if not t.meta.get("stealth")
        ][:5]
        alert_total = 0
        for trace in infections:
            report = TrafficReplay(
                OnTheWireDetector(trained_model)
            ).run(trace)
            alert_total += report.alert_count
        assert alert_total >= 4  # nearly all non-stealth episodes alert

    def test_report_shape(self, trained_model):
        detector = OnTheWireDetector(trained_model)
        report = TrafficReplay(detector).run([make_txn()])
        assert isinstance(report, ReplayReport)
        assert report.watches >= 1
        assert report.alert_count == 0


class TestProxySimulator:
    def test_merges_multiple_hosts(self, trained_model):
        detector = OnTheWireDetector(trained_model)
        traces = [
            Trace(transactions=[make_txn(client="h1", ts=1.0)]),
            Trace(transactions=[make_txn(client="h2", ts=0.5)]),
        ]
        report = ProxySimulator(detector).run(traces)
        assert report.transactions == 2
        assert report.watches == 2

    def test_alerts_attributed_to_client(self, trained_model, small_corpus):
        detector = OnTheWireDetector(trained_model)
        infection = next(
            t for t in small_corpus.infections if not t.meta.get("stealth")
        )
        client = infection.transactions[0].client
        report = ProxySimulator(detector).run([infection])
        assert report.alerts_for(client) == report.alerts
