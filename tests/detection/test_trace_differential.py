"""Tracing must observe the detection path, never steer it.

The tracing contract (DESIGN.md §16) mirrors the metrics one: running
the exact same capture with tracing enabled and disabled produces
byte-identical transactions, alerts (modulo the ``provenance`` field,
which only exists when traced), scores, and metrics snapshots.  And
when enabled, every alert must carry a provenance record whose fields
agree with the pipeline's own ground truth.
"""

import numpy as np

from repro.core.model import Trace
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.detection.live import LiveDetector
from repro.net.flows import packets_from_trace
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    Tracer,
    canonical_events,
    use_registry,
    use_tracer,
)


def _merged_capture(small_corpus):
    infection = next(
        t for t in small_corpus.infections if not t.meta.get("stealth")
    )
    benign = small_corpus.benign[0]
    merged = Trace(transactions=sorted(
        infection.transactions + benign.transactions,
        key=lambda t: t.timestamp,
    ))
    packets, book = packets_from_trace(merged)
    packets.sort(key=lambda p: p.timestamp)
    return packets, book


def _run_live(trained_model, packets, book):
    """One full LiveDetector pass under the currently active tracer."""
    detector = OnTheWireDetector(
        trained_model, config=DetectorConfig(alert_threshold=0.5)
    )
    live = LiveDetector(detector, book=book)
    for packet in packets:
        live.feed(packet)
    live.finish()
    return detector, live


def _alert_tuples(detector):
    """Every Alert field except provenance (absent when untraced)."""
    return [
        (a.client, a.score, a.clue, a.timestamp, a.wcg_order,
         a.wcg_size, a.session_key)
        for a in detector.alerts
    ]


class TestTracingIsInert:
    def test_outputs_identical_on_and_off(self, trained_model, small_corpus):
        packets, book = _merged_capture(small_corpus)

        with use_tracer(NULL_TRACER):
            base_detector, base_live = _run_live(trained_model, packets, book)
        with use_tracer(Tracer()) as tracer:
            obs_detector, obs_live = _run_live(trained_model, packets, book)

        assert obs_live.transactions_emitted == base_live.transactions_emitted
        assert obs_detector.transactions_seen == base_detector.transactions_seen
        assert obs_detector.classifications == base_detector.classifications
        assert obs_detector.watch_count() == base_detector.watch_count()
        assert _alert_tuples(obs_detector) == _alert_tuples(base_detector)
        assert base_detector.alerts  # the capture does alert
        # Untraced alerts carry no provenance; traced ones all do.
        assert all(a.provenance is None for a in base_detector.alerts)
        assert all(a.provenance is not None for a in obs_detector.alerts)
        assert tracer.event_count > 0

    def test_metrics_identical_on_and_off(self, trained_model, small_corpus):
        """The metrics stream must not notice tracing — in particular
        the WCG replay counters (edge events are emitted from the
        detector's own growth diff, never by forcing extra builds)."""
        packets, book = _merged_capture(small_corpus)

        def run():
            registry = MetricsRegistry()
            with use_registry(registry):
                _run_live(trained_model, packets, book)
            snap = registry.snapshot()
            # Wall-clock histograms differ run to run by construction;
            # counts are deterministic, timings are not.
            for hist in snap["histograms"].values():
                for key in ("sum", "min", "max", "mean",
                            "p50", "p90", "p99", "samples"):
                    hist.pop(key, None)
            return snap

        with use_tracer(NULL_TRACER):
            base = run()
        with use_tracer(Tracer()):
            traced = run()
        base_counters = {
            name: value for name, value in base["counters"].items()
            if not name.startswith("forest.arena_rebuilds")
        }
        traced_counters = {
            name: value for name, value in traced["counters"].items()
            if not name.startswith("forest.arena_rebuilds")
        }
        assert traced_counters == base_counters
        assert traced["histograms"] == base["histograms"]

    def test_same_capture_same_canonical_trace(
        self, trained_model, small_corpus
    ):
        """Two traced runs of the same packets produce the identical
        canonical event stream (wall-clock fields stripped)."""
        packets, book = _merged_capture(small_corpus)
        streams = []
        for _ in range(2):
            with use_tracer(Tracer()) as tracer:
                _run_live(trained_model, packets, book)
                streams.append(canonical_events(tracer.drain()))
        assert streams[0] == streams[1]
        kinds = {event["kind"] for event in streams[0]}
        assert {"watch", "clue", "edge", "wcg", "score",
                "verdict"} <= kinds


class TestProvenanceGroundTruth:
    def test_provenance_fields_agree_with_alert(
        self, trained_model, small_corpus
    ):
        packets, book = _merged_capture(small_corpus)
        with use_tracer(Tracer()) as tracer:
            detector, _ = _run_live(trained_model, packets, book)
        assert detector.alerts
        n_trees = len(trained_model.trees_)
        for alert in detector.alerts:
            prov = alert.provenance
            assert prov.wcg_order == alert.wcg_order
            assert prov.wcg_size == alert.wcg_size
            assert prov.engine == trained_model.engine
            # The clue chain starts at (or before) the alerting clue.
            assert prov.clue_chain
            assert prov.clues_total >= len(prov.clue_chain) > 0
            assert prov.first_clue_ts <= alert.clue.timestamp
            assert prov.time_to_detection == (
                alert.timestamp - prov.first_clue_ts
            )
            assert prov.time_from_first_edge == (
                alert.timestamp - prov.first_edge_ts
            )
            assert prov.first_edge_ts <= alert.timestamp
            # Forest explanation is complete and self-consistent.
            assert len(prov.tree_votes) == n_trees
            assert len(prov.tree_scores) == n_trees
            assert sum(prov.vote_tally) == n_trees
            assert prov.vote_tally[1] == sum(
                1 for vote in prov.tree_votes if vote == 1
            )
            assert len(prov.feature_path_counts) == 37
            assert sum(prov.feature_path_counts) > 0
            # The mean positive-class probability IS the alert score.
            assert np.isclose(float(np.mean(prov.tree_scores)), alert.score)

    def test_alert_verdict_events_embed_provenance(
        self, trained_model, small_corpus
    ):
        packets, book = _merged_capture(small_corpus)
        with use_tracer(Tracer()) as tracer:
            detector, _ = _run_live(trained_model, packets, book)
            events = tracer.drain()
        verdicts = [
            e for e in events
            if e.kind == "verdict" and e.data["decision"] == "alert"
        ]
        assert len(verdicts) == len(detector.alerts)
        for event, alert in zip(verdicts, detector.alerts):
            assert event.data["provenance"] == alert.provenance.to_dict()
            assert event.data["score"] == alert.score

    def test_provenance_dict_is_json_primitives(
        self, trained_model, small_corpus
    ):
        import json

        packets, book = _merged_capture(small_corpus)
        with use_tracer(Tracer()):
            detector, _ = _run_live(trained_model, packets, book)
        payload = detector.alerts[0].provenance.to_dict()
        assert json.loads(json.dumps(payload)) == payload


class TestAlertsSampling:
    def test_alerts_mode_keeps_only_alerting_timelines(
        self, trained_model, small_corpus
    ):
        packets, book = _merged_capture(small_corpus)
        with use_tracer(Tracer(sample="alerts")) as tracer:
            detector, _ = _run_live(trained_model, packets, book)
            events = tracer.drain()
        assert detector.alerts
        alerted = {a.session_key for a in detector.alerts}
        watched = {e.watch for e in events if e.watch}
        # Every retained timeline belongs to an alerting watch (or a
        # cooldown-suppressed fragment of the same incident).
        clients = {a.client for a in detector.alerts}
        for event in events:
            if event.watch:
                assert event.watch in alerted or event.client in clients
        assert alerted <= watched
