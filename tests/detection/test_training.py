"""Unit tests for clue-time-prefix training augmentation."""

import numpy as np
import pytest

from repro.core.model import Trace, TraceLabel
from repro.detection.training import clue_time_prefix, training_matrix
from repro.features.registry import NUM_FEATURES
from tests.conftest import make_txn


def _trace_with_download(label=TraceLabel.INFECTION):
    txns = [
        make_txn(host="a.com", ts=1.0),
        make_txn(host="a.com", uri="/s.css", ts=2.0,
                 content_type="text/css"),
        make_txn(host="ek.pw", uri="/drop.exe", ts=3.0,
                 content_type="application/x-msdownload"),
        make_txn(host="cnc.xyz", ts=4.0),
        make_txn(host="cnc.xyz", ts=5.0),
    ]
    return Trace(transactions=txns, label=label)


class TestClueTimePrefix:
    def test_cuts_at_first_risky_download(self):
        prefix = clue_time_prefix(_trace_with_download())
        assert prefix is not None
        assert len(prefix.transactions) == 3
        assert prefix.transactions[-1].server == "ek.pw"

    def test_label_preserved(self):
        prefix = clue_time_prefix(_trace_with_download(TraceLabel.BENIGN))
        assert prefix.label is TraceLabel.BENIGN

    def test_no_download_cuts_mid_session(self):
        txns = [make_txn(host=f"h{i}.com", ts=float(i)) for i in range(10)]
        trace = Trace(transactions=txns, label=TraceLabel.BENIGN)
        prefix = clue_time_prefix(trace)
        assert prefix is not None
        assert len(prefix.transactions) == 6  # 3/5 of 10

    def test_download_last_gives_none(self):
        txns = [
            make_txn(host="a.com", ts=1.0),
            make_txn(host="a.com", uri="/file.pdf", ts=2.0,
                     content_type="application/pdf"),
        ]
        trace = Trace(transactions=txns, label=TraceLabel.BENIGN)
        assert clue_time_prefix(trace) is None

    def test_tiny_trace_gives_none(self):
        trace = Trace(transactions=[make_txn()], label=TraceLabel.BENIGN)
        assert clue_time_prefix(trace) is None


class TestTrainingMatrix:
    def test_augmentation_adds_rows(self, tiny_corpus):
        traces = tiny_corpus.traces[:30]
        X_plain, y_plain = training_matrix(traces, augment_prefixes=False)
        X_aug, y_aug = training_matrix(traces, augment_prefixes=True)
        assert len(X_plain) == 30
        assert len(X_aug) > len(X_plain)
        assert X_aug.shape[1] == NUM_FEATURES

    def test_augmented_labels_balanced_within_classes(self, tiny_corpus):
        traces = tiny_corpus.traces[:60]
        _, y_plain = training_matrix(traces, augment_prefixes=False)
        _, y_aug = training_matrix(traces, augment_prefixes=True)
        # Prefix rows keep roughly the class ratio of the base rows.
        base_ratio = y_plain.mean()
        aug_ratio = y_aug.mean()
        assert abs(aug_ratio - base_ratio) < 0.25

    def test_unlabelled_traces_skipped(self):
        trace = Trace(transactions=[make_txn()])
        X, y = training_matrix([trace])
        assert len(X) == 0

    def test_empty_input(self):
        X, y = training_matrix([])
        assert X.shape == (0, NUM_FEATURES)
