"""Unit tests for infection-clue inference."""

import pytest

from repro.core.payloads import PayloadType
from repro.detection.clues import (
    ClueDetector,
    CluePolicy,
    payload_risk_from_corpus,
)
from tests.conftest import make_txn


def _redirect_txn(src, dst, ts):
    return make_txn(host=src, ts=ts, status=302, content_type="",
                    extra_res_headers={"Location": f"http://{dst}/n"})


class TestClueDetector:
    def test_exploit_shortcut_fires_immediately(self):
        detector = ClueDetector(CluePolicy(redirect_threshold=3))
        clue = detector.observe(
            make_txn(host="ek.pw", uri="/drop.exe",
                     content_type="application/x-msdownload")
        )
        assert clue is not None
        assert clue.payload_type is PayloadType.EXE
        assert clue.server == "ek.pw"

    def test_archive_needs_chain(self):
        detector = ClueDetector(CluePolicy(redirect_threshold=2))
        clue = detector.observe(
            make_txn(host="files.com", uri="/data.zip",
                     content_type="application/zip")
        )
        assert clue is None  # no chain yet

    def test_chain_plus_archive_fires(self):
        detector = ClueDetector(CluePolicy(redirect_threshold=2,
                                           exploit_shortcut=False))
        detector.observe(_redirect_txn("a.com", "b.com", 1.0))
        detector.observe(_redirect_txn("b.com", "c.com", 2.0))
        clue = detector.observe(
            make_txn(host="c.com", uri="/x.zip", ts=3.0,
                     content_type="application/zip")
        )
        assert clue is not None
        assert clue.chain_length >= 2

    def test_below_threshold_no_clue(self):
        detector = ClueDetector(CluePolicy(redirect_threshold=5,
                                           exploit_shortcut=False))
        detector.observe(_redirect_txn("a.com", "b.com", 1.0))
        clue = detector.observe(
            make_txn(host="b.com", uri="/x.zip", ts=2.0,
                     content_type="application/zip")
        )
        assert clue is None

    def test_html_never_a_clue(self):
        detector = ClueDetector(CluePolicy(redirect_threshold=0))
        clue = detector.observe(make_txn(content_type="text/html"))
        assert clue is None

    def test_failed_download_no_clue(self):
        detector = ClueDetector()
        clue = detector.observe(
            make_txn(host="ek.pw", uri="/drop.exe", status=404,
                     content_type="application/x-msdownload")
        )
        assert clue is None

    def test_reset_clears_window(self):
        detector = ClueDetector()
        detector.observe(_redirect_txn("a.com", "b.com", 1.0))
        assert len(detector.window) == 1
        detector.reset()
        assert detector.window == []


class TestPayloadRisk:
    def test_risk_from_corpus(self, tiny_corpus):
        risk = payload_risk_from_corpus(tiny_corpus.traces)
        # Exploit types seen almost exclusively in infections.
        if PayloadType.SWF in risk:
            assert risk[PayloadType.SWF] > 0.9
        assert risk[PayloadType.JAR] > 0.8
        # Page furniture is overwhelmingly benign-dominated.
        assert risk[PayloadType.HTML] < 0.6

    def test_crypt_only_in_infections(self, tiny_corpus):
        risk = payload_risk_from_corpus(tiny_corpus.traces)
        if PayloadType.CRYPT in risk:
            assert risk[PayloadType.CRYPT] == 1.0

    def test_empty_corpus(self):
        assert payload_risk_from_corpus([]) == {}
