"""Tests for the live packet-level deployment path."""

import pytest

from repro.core.model import Trace
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.detection.live import LiveDecoder, LiveDetector
from repro.net.flows import packets_from_trace, transactions_from_packets
from tests.conftest import make_txn


def _capture(trace):
    return packets_from_trace(trace)


class TestLiveDecoder:
    def test_matches_batch_decode(self, small_corpus):
        trace = small_corpus.infections[0]
        packets, book = _capture(trace)
        batch = transactions_from_packets(packets, book=book)

        decoder = LiveDecoder(book=book)
        live = []
        for packet in packets:
            live.extend(decoder.feed(packet))
        live.extend(decoder.flush())

        assert len(live) == len(batch)
        assert {t.request.uri for t in live} == {
            t.request.uri for t in batch
        }

    def test_transaction_emitted_on_response_completion(self):
        trace = Trace(transactions=[make_txn(host="a.com", body=b"x" * 10)])
        packets, book = _capture(trace)
        decoder = LiveDecoder(book=book)
        seen = []
        emitted_at = None
        for index, packet in enumerate(packets):
            got = decoder.feed(packet)
            seen.extend(got)
            if got and emitted_at is None:
                emitted_at = index
        assert len(seen) == 1
        # Emission happens before the capture's final teardown packet.
        assert emitted_at < len(packets) - 1

    def test_unanswered_request_flushes_on_close(self):
        # The server never answers; the connection teardown (or, absent
        # one, the end-of-capture flush) must still surface the request.
        txn = make_txn(host="dead.ru")
        txn.response = None
        packets, book = _capture(Trace(transactions=[txn]))
        decoder = LiveDecoder(book=book)
        emitted = []
        for packet in packets:
            emitted.extend(decoder.feed(packet))
        emitted.extend(decoder.flush())
        assert len(emitted) == 1
        assert emitted[0].response is None

    def test_no_duplicate_emission(self, small_corpus):
        trace = small_corpus.benign[0]
        packets, book = _capture(trace)
        decoder = LiveDecoder(book=book)
        live = []
        for packet in packets:
            live.extend(decoder.feed(packet))
        live.extend(decoder.flush())
        uris = [(t.request.uri, t.timestamp) for t in live]
        assert len(uris) == len(set(uris))

    def test_interleaved_connections(self):
        trace = Trace(transactions=[
            make_txn(host="a.com", uri="/1", ts=1.0),
            make_txn(host="b.com", uri="/2", ts=1.5),
            make_txn(host="a.com", uri="/3", ts=2.0),
        ])
        packets, book = _capture(trace)
        packets.sort(key=lambda p: p.timestamp)
        decoder = LiveDecoder(book=book)
        live = []
        for packet in packets:
            live.extend(decoder.feed(packet))
        live.extend(decoder.flush())
        assert {t.request.uri for t in live} == {"/1", "/2", "/3"}


class TestLiveDetector:
    def test_alerts_on_infection_capture(self, trained_model, small_corpus):
        infection = next(
            t for t in small_corpus.infections if not t.meta.get("stealth")
        )
        packets, book = _capture(infection)
        live = LiveDetector(
            OnTheWireDetector(trained_model,
                              config=DetectorConfig(alert_threshold=0.5)),
            book=book,
        )
        alerts = []
        for packet in packets:
            alerts.extend(live.feed(packet))
        alerts.extend(live.finish())
        assert alerts
        assert live.transactions_emitted == len(infection.transactions)

    def test_clean_on_benign_capture(self, trained_model, small_corpus):
        benign = next(
            t for t in small_corpus.benign
            if t.meta.get("scenario") in ("search", "alexa")
        )
        packets, book = _capture(benign)
        live = LiveDetector(OnTheWireDetector(trained_model), book=book)
        alerts = []
        for packet in packets:
            alerts.extend(live.feed(packet))
        alerts.extend(live.finish())
        assert alerts == []
