"""Unit tests for the Table I family profiles."""

import pytest

from repro.synthesis.families import (
    BENIGN_PROFILE,
    EXPLOIT_KIT_FAMILIES,
    TOTAL_INFECTION_TRACES,
    family_by_name,
)


class TestTableOneEncoding:
    def test_ten_family_rows(self):
        assert len(EXPLOIT_KIT_FAMILIES) == 10

    def test_total_infection_traces_is_770(self):
        assert TOTAL_INFECTION_TRACES == 770

    def test_benign_row(self):
        assert BENIGN_PROFILE.trace_count == 980
        assert (BENIGN_PROFILE.hosts.low, BENIGN_PROFILE.hosts.high,
                BENIGN_PROFILE.hosts.mean) == (2, 34, 3)
        assert BENIGN_PROFILE.redirects.high == 2
        assert BENIGN_PROFILE.post_download_prob == 0.0

    def test_angler_row_matches_paper(self):
        angler = family_by_name("Angler")
        assert angler.trace_count == 253
        assert (angler.hosts.low, angler.hosts.high, angler.hosts.mean) == \
            (2, 74, 6)
        assert angler.redirects.high == 18
        assert angler.payload_counts["js"] == 1163
        assert angler.payload_counts["crypt"] == 64

    def test_goon_has_longest_redirect_chain(self):
        goon = family_by_name("Goon")
        assert goon.redirects.high == 30
        assert goon.redirects.high == max(
            f.redirects.high for f in EXPLOIT_KIT_FAMILIES
        )

    def test_magnitude_has_most_hosts_on_average(self):
        magnitude = family_by_name("Magnitude")
        assert magnitude.hosts.mean == max(
            f.hosts.mean for f in EXPLOIT_KIT_FAMILIES
        )

    def test_minimum_hosts_always_two(self):
        # "the smallest conversation involves a client and one remote host"
        assert all(f.hosts.low == 2 for f in EXPLOIT_KIT_FAMILIES)
        assert BENIGN_PROFILE.hosts.low == 2

    def test_payload_rate(self):
        rig = family_by_name("RIG")
        assert rig.payload_rate["jar"] == pytest.approx(74 / 62)

    def test_callback_prevalence_default(self):
        assert family_by_name("Nuclear").post_download_prob == \
            pytest.approx(708 / 770)

    def test_lookup_case_insensitive(self):
        assert family_by_name("angler") is family_by_name("ANGLER")

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError, match="unknown family"):
            family_by_name("NotAKit")

    def test_signature_payloads_nonempty(self):
        for profile in EXPLOIT_KIT_FAMILIES:
            assert profile.signature_payloads
