"""Unit tests for the benign browsing-session generators."""

import numpy as np
import pytest

from repro.core.model import HttpMethod, TraceLabel
from repro.core.payloads import PayloadType, is_exploit_type
from repro.synthesis.benign import (
    SCENARIO_WEIGHTS,
    BenignGenerator,
    BenignScenario,
)


@pytest.fixture()
def gen(rng):
    return BenignGenerator(rng)


class TestScenarioWeights:
    def test_normalized(self):
        assert sum(SCENARIO_WEIGHTS.values()) == pytest.approx(1.0)

    def test_hard_cases_rare(self):
        hard = (SCENARIO_WEIGHTS[BenignScenario.UNOFFICIAL_DOWNLOAD]
                + SCENARIO_WEIGHTS[BenignScenario.TORRENT]
                + SCENARIO_WEIGHTS[BenignScenario.AGGRESSIVE_ADS])
        assert hard <= 0.1


class TestScenarios:
    def test_labelled_benign(self, gen):
        trace = gen.generate()
        assert trace.label is TraceLabel.BENIGN

    def test_search_origin_is_engine(self, gen):
        trace = gen.generate(BenignScenario.SEARCH)
        assert trace.origin in ("google.com", "bing.com")
        assert trace.meta["scenario"] == "search"

    def test_webmail_downloads_attachment(self, gen):
        trace = gen.generate(BenignScenario.WEBMAIL)
        uris = [t.request.uri for t in trace.transactions]
        assert any("/attachments/" in uri for uri in uris)

    def test_email_link_has_no_origin(self, gen):
        trace = gen.generate(BenignScenario.EMAIL_LINK)
        assert trace.origin == ""

    def test_video_streams_segments(self, gen):
        trace = gen.generate(BenignScenario.VIDEO)
        ctypes = [
            t.response.content_type for t in trace.transactions if t.response
        ]
        assert any("video" in c for c in ctypes)

    def test_torrent_has_huge_downloads(self, gen):
        trace = gen.generate(BenignScenario.TORRENT)
        sizes = [t.payload_size for t in trace.transactions]
        assert max(sizes) >= 246_000_000  # the paper's FP size range

    def test_unofficial_download_fetches_exe(self, gen):
        trace = gen.generate(BenignScenario.UNOFFICIAL_DOWNLOAD)
        types = {t.payload_type for t in trace.transactions}
        assert PayloadType.EXE in types

    def test_aggressive_ads_have_redirect_hops(self, gen):
        trace = gen.generate(BenignScenario.AGGRESSIVE_ADS)
        statuses = [t.status for t in trace.transactions]
        assert 302 in statuses

    def test_no_ransomware_payloads_ever(self, gen):
        for _ in range(20):
            trace = gen.generate()
            types = {t.payload_type for t in trace.transactions}
            assert PayloadType.CRYPT not in types


class TestCalibration:
    def test_host_count_benign_range(self):
        gen = BenignGenerator(np.random.default_rng(11))
        counts = [len(gen.generate().hosts) for _ in range(80)]
        # Table I benign: 2-34 hosts, average 3 (ours runs slightly
        # higher because of tracker/CDN hosts; see EXPERIMENTS.md).
        assert min(counts) >= 2
        assert max(counts) <= 34
        assert 2.0 <= float(np.mean(counts)) <= 8.0

    def test_human_pacing(self):
        gen = BenignGenerator(np.random.default_rng(12))
        gaps = []
        for _ in range(30):
            trace = gen.generate()
            stamps = sorted(t.timestamp for t in trace.transactions)
            if len(stamps) > 1:
                gaps.append(float(np.diff(stamps).mean()))
        assert float(np.mean(gaps)) > 3.0

    def test_mostly_gets(self):
        gen = BenignGenerator(np.random.default_rng(13))
        methods = []
        for _ in range(20):
            methods.extend(
                t.request.method for t in gen.generate().transactions
            )
        gets = sum(1 for m in methods if m is HttpMethod.GET)
        assert gets / len(methods) > 0.7

    def test_determinism(self):
        gen_a = BenignGenerator(np.random.default_rng(99))
        gen_b = BenignGenerator(np.random.default_rng(99))
        trace_a, trace_b = gen_a.generate(), gen_b.generate()
        assert [t.request.uri for t in trace_a] == [
            t.request.uri for t in trace_b
        ]
        assert trace_a.meta == trace_b.meta
