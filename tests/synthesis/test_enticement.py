"""Unit tests for the enticement-origin model (Figure 1)."""

import numpy as np
import pytest

from repro.synthesis.entities import NameForge
from repro.synthesis.enticement import (
    ENTICEMENT_DISTRIBUTION,
    EnticementKind,
    draw_enticement,
)


class TestDistribution:
    def test_normalized(self):
        assert sum(ENTICEMENT_DISTRIBUTION.values()) == pytest.approx(1.0)

    def test_search_engines_dominate(self):
        search = (ENTICEMENT_DISTRIBUTION[EnticementKind.GOOGLE]
                  + ENTICEMENT_DISTRIBUTION[EnticementKind.BING])
        assert search > 0.55  # paper: 62%

    def test_google_exceeds_bing(self):
        assert ENTICEMENT_DISTRIBUTION[EnticementKind.GOOGLE] > \
            ENTICEMENT_DISTRIBUTION[EnticementKind.BING]

    def test_social_is_rare(self):
        assert ENTICEMENT_DISTRIBUTION[EnticementKind.SOCIAL] < 0.01


class TestDraw:
    def _draws(self, n=2000, seed=0):
        rng = np.random.default_rng(seed)
        forge = NameForge(rng)
        return [draw_enticement(rng, forge) for _ in range(n)]

    def test_empirical_matches_figure1(self):
        draws = self._draws()
        fractions = {
            kind: sum(1 for d in draws if d.kind is kind) / len(draws)
            for kind in EnticementKind
        }
        for kind, expected in ENTICEMENT_DISTRIBUTION.items():
            assert fractions[kind] == pytest.approx(expected, abs=0.03)

    def test_google_referrer_url(self):
        for drawn in self._draws(200):
            if drawn.kind is EnticementKind.GOOGLE:
                assert drawn.origin_host == "google.com"
                assert drawn.referrer_url.startswith("http://google.com/")
                return
        pytest.fail("no google draw in 200 samples")

    def test_concealed_kinds_have_no_referrer(self):
        for drawn in self._draws(400):
            if drawn.concealed:
                assert drawn.origin_host == ""
                assert drawn.referrer_url == ""

    def test_compromised_has_cms_path(self):
        for drawn in self._draws(400):
            if drawn.kind is EnticementKind.COMPROMISED:
                assert drawn.origin_host
                assert any(
                    marker in drawn.referrer_url
                    for marker in ("/wp-", "/components/", "/modules/",
                                   "/sites/")
                )
                return
        pytest.fail("no compromised draw in 400 samples")

    def test_repr(self):
        drawn = self._draws(1)[0]
        assert "Enticement(" in repr(drawn)
