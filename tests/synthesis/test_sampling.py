"""Unit + property tests for the calibrated sampling helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.synthesis.sampling import (
    bounded_int,
    bounded_sample,
    lognormal_bounded,
    poisson_at_least,
)


class TestBoundedSample:
    def test_degenerate_range(self, rng):
        assert bounded_sample(rng, 5.0, 5.0, 5.0) == 5.0
        assert bounded_sample(rng, 5.0, 4.0, 5.0) == 5.0

    def test_mean_pinned(self):
        rng = np.random.default_rng(0)
        draws = [bounded_sample(rng, 2, 74, 6) for _ in range(5000)]
        assert np.mean(draws) == pytest.approx(6.0, rel=0.15)

    @settings(max_examples=50, deadline=None)
    @given(
        low=st.floats(0, 100, allow_nan=False),
        span=st.floats(0.1, 1000, allow_nan=False),
        frac=st.floats(0.01, 0.99),
        seed=st.integers(0, 10**6),
    )
    def test_bounds_respected_property(self, low, span, frac, seed):
        rng = np.random.default_rng(seed)
        high = low + span
        mean = low + frac * span
        value = bounded_sample(rng, low, high, mean)
        assert low <= value <= high

    def test_mean_clipped_to_range(self, rng):
        value = bounded_sample(rng, 0, 10, 99)  # mean outside range
        assert 0 <= value <= 10


class TestBoundedInt:
    def test_integer_and_inclusive(self):
        rng = np.random.default_rng(3)
        draws = [bounded_int(rng, 0, 18, 1) for _ in range(2000)]
        assert all(isinstance(d, int) for d in draws)
        assert min(draws) >= 0
        assert max(draws) <= 18

    def test_degenerate(self, rng):
        assert bounded_int(rng, 4, 4, 4) == 4


class TestLognormalBounded:
    def test_clipping(self):
        rng = np.random.default_rng(1)
        draws = [lognormal_bounded(rng, 0.5, 4061.0, 123.0)
                 for _ in range(3000)]
        assert min(draws) >= 0.5
        assert max(draws) <= 4061.0

    def test_heavy_tail_shape(self):
        rng = np.random.default_rng(2)
        draws = np.array(
            [lognormal_bounded(rng, 0.5, 4061.0, 123.0) for _ in range(5000)]
        )
        # Log-normal: median well below mean.
        assert np.median(draws) < np.mean(draws)

    def test_degenerate(self, rng):
        assert lognormal_bounded(rng, 7.0, 7.0, 7.0) == 7.0


class TestPoissonAtLeast:
    def test_floor(self, rng):
        draws = [poisson_at_least(rng, 0.1, minimum=1) for _ in range(100)]
        assert min(draws) >= 1

    def test_zero_mean(self, rng):
        assert poisson_at_least(rng, 0.0) == 0
        assert poisson_at_least(rng, -5.0) == 0
