"""Unit tests for the obfuscation generators."""

import numpy as np
import pytest

from repro.synthesis.obfuscation import (
    ObfuscationStyle,
    obfuscate_redirect,
    random_style,
)


class TestObfuscateRedirect:
    URL = "http://exploit-kit.pw/gate?k=abc123"

    @pytest.mark.parametrize("style", list(ObfuscationStyle))
    def test_snippet_nonempty(self, style, rng):
        snippet = obfuscate_redirect(self.URL, style, rng)
        assert snippet

    @pytest.mark.parametrize(
        "style",
        [ObfuscationStyle.FROMCHARCODE, ObfuscationStyle.UNESCAPE,
         ObfuscationStyle.ATOB, ObfuscationStyle.REVERSE],
    )
    def test_url_not_visible_in_heavy_styles(self, style, rng):
        snippet = obfuscate_redirect(self.URL, style, rng)
        assert self.URL not in snippet

    def test_concat_splits_url(self, rng):
        snippet = obfuscate_redirect(self.URL, ObfuscationStyle.CONCAT, rng)
        assert self.URL not in snippet
        assert "+" in snippet

    def test_meta_refresh_contains_url(self, rng):
        snippet = obfuscate_redirect(self.URL, ObfuscationStyle.META_REFRESH,
                                     rng)
        assert self.URL in snippet
        assert "http-equiv" in snippet

    def test_iframe_is_hidden(self, rng):
        snippet = obfuscate_redirect(self.URL, ObfuscationStyle.IFRAME, rng)
        assert "visibility:hidden" in snippet


class TestRandomStyle:
    def test_all_weighted_styles_reachable(self):
        rng = np.random.default_rng(0)
        seen = {random_style(rng) for _ in range(500)}
        assert len(seen) >= 7

    def test_markup_exclusion(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            style = random_style(rng, include_markup=False)
            assert style not in (ObfuscationStyle.IFRAME,
                                 ObfuscationStyle.META_REFRESH)

    def test_iframe_most_common_with_markup(self):
        rng = np.random.default_rng(1)
        draws = [random_style(rng) for _ in range(1000)]
        iframe_share = draws.count(ObfuscationStyle.IFRAME) / len(draws)
        assert iframe_share == pytest.approx(0.25, abs=0.05)
