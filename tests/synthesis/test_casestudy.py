"""Unit tests for the case-study stream generators."""

import pytest

from repro.synthesis.casestudy import (
    enterprise_live_session,
    forensic_streaming_session,
)


@pytest.fixture(scope="module")
def forensic():
    return forensic_streaming_session(seed=2016)


@pytest.fixture(scope="module")
def enterprise():
    return enterprise_live_session(seed=48)


class TestForensicSession:
    def test_transaction_volume_matches_paper(self, forensic):
        assert forensic.transaction_count == 3011

    def test_single_client(self, forensic):
        assert forensic.clients == ["fan-laptop"]
        assert all(
            t.client == "fan-laptop" for t in forensic.trace.transactions
        )

    def test_five_infectious_episodes(self, forensic):
        assert forensic.infectious_episodes == 5

    def test_download_count_capped_at_32(self, forensic):
        assert len(forensic.downloads) <= 32

    def test_has_content_borne_pdf(self, forensic):
        assert any(
            d.content_borne and d.malicious for d in forensic.downloads
        )

    def test_downloads_have_hashes(self, forensic):
        assert all(d.sha256 for d in forensic.downloads)

    def test_stream_time_ordered(self, forensic):
        stamps = [t.timestamp for t in forensic.trace.transactions]
        assert stamps == sorted(stamps)

    def test_streaming_filler_dominates(self, forensic):
        segments = sum(
            1 for t in forensic.trace.transactions
            if t.server == "atdhe.net"
        )
        assert segments > 1000

    def test_determinism(self):
        again = forensic_streaming_session(seed=2016)
        assert again.transaction_count == 3011
        assert len(again.downloads) == len(
            forensic_streaming_session(seed=2016).downloads
        )


class TestEnterpriseSession:
    def test_three_hosts(self, enterprise):
        assert set(enterprise.clients) == {
            "win-host", "ubuntu-host", "macos-host"
        }

    def test_eight_infectious_episodes(self, enterprise):
        assert enterprise.infectious_episodes == 8

    def test_download_mix_spans_hosts(self, enterprise):
        by_host = {}
        for record in enterprise.downloads:
            by_host.setdefault(record.client, []).append(record)
        assert set(by_host) == {"win-host", "ubuntu-host", "macos-host"}

    def test_windows_has_content_borne_pdfs(self, enterprise):
        pdfs = [
            d for d in enterprise.downloads
            if d.content_borne and d.client == "win-host"
        ]
        assert len(pdfs) == 2

    def test_macos_infection_is_dmg(self, enterprise):
        mac_malicious = [
            d for d in enterprise.downloads
            if d.client == "macos-host" and d.malicious
            and not d.content_borne
        ]
        assert all(d.extension == "dmg" for d in mac_malicious)
        assert len(mac_malicious) >= 1

    def test_stream_merged_and_ordered(self, enterprise):
        stamps = [t.timestamp for t in enterprise.trace.transactions]
        assert stamps == sorted(stamps)
        clients = {t.client for t in enterprise.trace.transactions}
        assert clients == {"win-host", "ubuntu-host", "macos-host"}
