"""Unit tests for the infection episode generator."""

import numpy as np
import pytest

from repro.core.builder import build_wcg
from repro.core.model import HttpMethod, TraceLabel
from repro.core.payloads import PayloadType, is_exploit_type
from repro.core.redirects import RedirectKind, infer_redirects
from repro.core.stages import Stage
from repro.synthesis.families import family_by_name
from repro.synthesis.infection import EpisodeConfig, InfectionGenerator


@pytest.fixture()
def angler_gen(rng):
    return InfectionGenerator(family_by_name("Angler"), rng)


def _episodes(gen, n=20, config=None):
    return [gen.generate(config) for _ in range(n)]


class TestEpisodeShape:
    def test_labelled_infection(self, angler_gen):
        trace = angler_gen.generate()
        assert trace.label is TraceLabel.INFECTION
        assert trace.family == "Angler"

    def test_timestamps_ordered(self, angler_gen):
        trace = angler_gen.generate()
        stamps = [t.timestamp for t in trace.transactions]
        assert stamps == sorted(stamps)

    def test_host_counts_within_family_range(self, angler_gen):
        profile = family_by_name("Angler")
        for trace in _episodes(angler_gen, 30):
            assert 2 <= len(trace.hosts) <= profile.hosts.high + 1

    def test_lifetime_within_global_range(self, angler_gen):
        # Section III-D: lifetimes between 0.5 and 4061 seconds.
        for trace in _episodes(angler_gen, 30):
            assert 0.4 <= trace.duration <= 4061.0

    def test_exploit_payload_downloaded(self, angler_gen):
        trace = angler_gen.generate(EpisodeConfig(stealth=False))
        types = {t.payload_type for t in trace.transactions
                 if t.status == 200}
        assert any(is_exploit_type(pt) for pt in types)

    def test_post_download_callbacks_to_fresh_hosts(self, angler_gen):
        # Section II-D: call-back hosts never seen before download.
        trace = angler_gen.generate(EpisodeConfig(with_post_download=True))
        wcg = build_wcg(trace)
        post_targets = {
            target for _, target, data in wcg.request_edges()
            if data.stage is Stage.POST_DOWNLOAD
        }
        pre_and_download_targets = {
            target for _, target, data in wcg.request_edges()
            if data.stage is not Stage.POST_DOWNLOAD
        }
        assert post_targets
        assert not post_targets & pre_and_download_targets

    def test_redirect_chain_present(self, angler_gen):
        trace = angler_gen.generate(EpisodeConfig(redirectless=False))
        genuine = [
            r for r in infer_redirects(trace.transactions)
            if r.kind is not RedirectKind.REFERRER
        ]
        assert genuine

    def test_meta_records_choices(self, angler_gen):
        trace = angler_gen.generate()
        assert "enticement" in trace.meta
        assert "exploit_host" in trace.meta
        assert "payload_exts" in trace.meta


class TestHardCases:
    def test_redirectless_config(self, angler_gen):
        trace = angler_gen.generate(EpisodeConfig(redirectless=True))
        genuine = [
            r for r in infer_redirects(trace.transactions)
            if r.kind is not RedirectKind.REFERRER
        ]
        assert genuine == []

    def test_no_post_download_config(self, angler_gen):
        trace = angler_gen.generate(EpisodeConfig(with_post_download=False))
        posts = [t for t in trace.transactions
                 if t.request.method is HttpMethod.POST]
        assert posts == []

    def test_compressed_payload_config(self, angler_gen):
        trace = angler_gen.generate(EpisodeConfig(compressed_payload=True))
        types = {t.payload_type for t in trace.transactions
                 if t.status == 200}
        assert PayloadType.ARCHIVE in types
        assert not any(is_exploit_type(pt) for pt in types)

    def test_stealth_is_small_and_quiet(self, angler_gen):
        trace = angler_gen.generate(EpisodeConfig(stealth=True))
        assert len(trace.hosts) <= 5
        assert trace.meta["stealth"]
        # No exploit-typed payloads, no X-Flash fingerprinting.
        types = {t.payload_type for t in trace.transactions
                 if t.status == 200}
        assert not any(is_exploit_type(pt) for pt in types)
        assert not any(
            t.request.headers.get("X-Flash-Version")
            for t in trace.transactions
        )

    def test_stealth_paces_like_a_human(self, angler_gen):
        trace = angler_gen.generate(EpisodeConfig(stealth=True))
        stamps = sorted(t.timestamp for t in trace.transactions)
        gaps = np.diff(stamps)
        assert gaps.mean() > 5.0

    def test_start_time_override(self, angler_gen):
        trace = angler_gen.generate(EpisodeConfig(start_time=1_500_000_000.0))
        assert trace.transactions[0].timestamp == pytest.approx(
            1_500_000_000.0, abs=5.0
        )


class TestFamilyCalibration:
    @pytest.mark.parametrize("family", ["Angler", "Nuclear", "Magnitude",
                                        "Goon", "Fiesta"])
    def test_average_hosts_tracks_profile(self, family):
        profile = family_by_name(family)
        gen = InfectionGenerator(profile, np.random.default_rng(42))
        counts = [len(t.hosts) for t in _episodes(gen, 60)]
        measured = float(np.mean(counts))
        # Mean within a factor ~2 of the Table I average (small sample).
        assert profile.hosts.mean / 2 <= measured <= profile.hosts.mean * 2.5

    def test_determinism(self):
        gen_a = InfectionGenerator(family_by_name("RIG"),
                                   np.random.default_rng(77))
        gen_b = InfectionGenerator(family_by_name("RIG"),
                                   np.random.default_rng(77))
        trace_a, trace_b = gen_a.generate(), gen_b.generate()
        assert len(trace_a) == len(trace_b)
        assert [t.request.uri for t in trace_a] == [
            t.request.uri for t in trace_b
        ]
