"""Unit tests for corpus builders."""

import numpy as np
import pytest

from repro.core.model import TraceLabel
from repro.synthesis.corpus import Corpus, ground_truth_corpus, validation_corpus
from repro.synthesis.families import EXPLOIT_KIT_FAMILIES


class TestGroundTruthCorpus:
    def test_scaled_composition(self, tiny_corpus):
        assert len(tiny_corpus.benign) == 49  # round(980 * 0.05)
        assert len(tiny_corpus.infections) > 30

    def test_every_family_present(self, tiny_corpus):
        expected = {f.name for f in EXPLOIT_KIT_FAMILIES}
        assert set(tiny_corpus.families) == expected

    def test_all_labelled(self, tiny_corpus):
        assert all(t.label is not None for t in tiny_corpus.traces)

    def test_by_family(self, tiny_corpus):
        angler = tiny_corpus.by_family("angler")
        assert angler
        assert all(t.family == "Angler" for t in angler)

    def test_full_scale_composition_counts(self):
        # Verify the arithmetic without generating: scale math only.
        from repro.synthesis.corpus import _scaled
        assert _scaled(980, 1.0) == 980
        assert _scaled(253, 1.0) == 253
        assert _scaled(19, 0.01) == 1  # floor of one trace per stratum

    def test_determinism(self):
        corpus_a = ground_truth_corpus(seed=5, scale=0.02)
        corpus_b = ground_truth_corpus(seed=5, scale=0.02)
        assert len(corpus_a) == len(corpus_b)
        uris_a = [t.transactions[0].request.uri for t in corpus_a.traces]
        uris_b = [t.transactions[0].request.uri for t in corpus_b.traces]
        assert uris_a == uris_b

    def test_different_seeds_differ(self):
        corpus_a = ground_truth_corpus(seed=5, scale=0.02)
        corpus_b = ground_truth_corpus(seed=6, scale=0.02)
        uris_a = [t.transactions[0].request.uri for t in corpus_a.traces]
        uris_b = [t.transactions[0].request.uri for t in corpus_b.traces]
        assert uris_a != uris_b

    def test_iteration_and_len(self, tiny_corpus):
        assert len(list(tiny_corpus)) == len(tiny_corpus)


class TestValidationCorpus:
    def test_composition_ratio(self):
        corpus = validation_corpus(scale=0.01)
        # 7489:1500 infection:benign ratio, scaled
        assert len(corpus.infections) == 75  # round-ish of 74.89
        assert len(corpus.benign) == 15

    def test_disjoint_from_ground_truth(self):
        ground = ground_truth_corpus(seed=7, scale=0.02)
        validation = validation_corpus(seed=1301, scale=0.005)
        ground_hosts = set().union(*(t.hosts for t in ground.infections))
        validation_hosts = set().union(
            *(t.hosts for t in validation.infections)
        )
        # Malicious infrastructure is minted fresh: overlap only on
        # well-known benign sites, never on exploit hosts.
        overlap = ground_hosts & validation_hosts
        assert not any(h.endswith((".pw", ".top", ".xyz")) for h in overlap)

    def test_family_mix_tracks_table1_weights(self):
        corpus = validation_corpus(scale=0.05)
        angler = len(corpus.by_family("Angler"))
        goon = len(corpus.by_family("Goon"))
        assert angler > goon  # 253/770 vs 19/770 of the mass

    def test_drift_changes_generation(self):
        base = validation_corpus(seed=1301, scale=0.005, drift=0.0)
        drifted = validation_corpus(seed=1301, scale=0.005, drift=0.5)
        sizes_a = [len(t) for t in base.infections]
        sizes_b = [len(t) for t in drifted.infections]
        assert sizes_a != sizes_b


class TestCorpusContainer:
    def test_empty_corpus(self):
        corpus = Corpus()
        assert len(corpus) == 0
        assert corpus.benign == []
        assert corpus.infections == []
        assert corpus.families == []
