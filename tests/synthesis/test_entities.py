"""Unit tests for the entity forge."""

import numpy as np
import pytest

from repro.synthesis.entities import NameForge, TRUSTED_VENDORS


@pytest.fixture()
def forge(rng):
    return NameForge(rng)


class TestNameForge:
    def test_domains_never_repeat(self, forge):
        domains = {forge.domain() for _ in range(500)}
        assert len(domains) == 500

    def test_domain_structure(self, forge):
        domain = forge.domain()
        assert domain.count(".") == 1
        name, tld = domain.split(".")
        assert name and tld

    def test_fixed_tld(self, forge):
        assert forge.domain(tld="com").endswith(".com")

    def test_dga_domain_shape(self, forge):
        dga = forge.dga_domain()
        body = dga.split(".")[0]
        assert 10 <= len(body) < 20

    def test_subdomain(self, forge):
        assert forge.subdomain("akamai.net").endswith(".akamai.net")

    def test_cms_uri_matches_known_installations(self, forge):
        markers = ("/wp-", "/components/", "/modules/", "/sites/")
        for _ in range(20):
            uri = forge.cms_uri()
            assert any(uri.startswith(m) or m in uri for m in markers), uri

    def test_ip_shape(self, forge):
        for _ in range(50):
            parts = forge.ip().split(".")
            assert len(parts) == 4
            assert all(0 < int(p) < 256 for p in parts)

    def test_token_hex(self, forge):
        token = forge.token(32)
        assert len(token) == 32
        int(token, 16)  # must be valid hex

    def test_uri_extension_and_query(self, forge):
        uri = forge.uri(depth=2, extension="js", query=True)
        path = uri.split("?")[0]
        assert path.endswith(".js")
        assert "id=" in uri

    def test_long_ek_uri_is_long(self, forge):
        uris = [forge.long_ek_uri(extension="exe") for _ in range(20)]
        assert all(".exe" in u for u in uris)
        assert np.mean([len(u) for u in uris]) > 50

    def test_determinism_same_seed(self):
        forge_a = NameForge(np.random.default_rng(9))
        forge_b = NameForge(np.random.default_rng(9))
        assert [forge_a.domain() for _ in range(10)] == [
            forge_b.domain() for _ in range(10)
        ]

    def test_user_agent_plausible(self, forge):
        assert forge.user_agent().startswith("Mozilla/")

    def test_trusted_vendors_nonempty(self):
        assert len(TRUSTED_VENDORS) >= 5


class TestDomainSpaceExhaustion:
    def test_small_shape_space_does_not_hang(self):
        # 2-syllable .com domains have ~900 combinations; full-scale
        # corpora mint thousands of compromised sites from that shape.
        forge = NameForge(np.random.default_rng(0))
        minted = {forge.compromised_site() for _ in range(3000)}
        assert len(minted) == 3000
