"""Unit tests for the Table II feature registry."""

import pytest

from repro.features.registry import (
    FEATURES,
    NUM_FEATURES,
    FeatureGroup,
    feature_names,
    indices_of_groups,
    spec_by_name,
)


class TestRegistryShape:
    def test_thirty_seven_features(self):
        assert NUM_FEATURES == 37

    def test_fids_sequential(self):
        assert [s.fid for s in FEATURES] == [f"f{i}" for i in
                                             range(1, 38)]

    def test_group_sizes_match_table2(self):
        by_group = {}
        for spec in FEATURES:
            by_group[spec.group] = by_group.get(spec.group, 0) + 1
        assert by_group[FeatureGroup.HIGH_LEVEL] == 6   # f1-f6
        assert by_group[FeatureGroup.GRAPH] == 19       # f7-f25
        assert by_group[FeatureGroup.HEADER] == 10      # f26-f35
        assert by_group[FeatureGroup.TEMPORAL] == 2     # f36-f37

    def test_twenty_seven_novel_features(self):
        # The paper introduces 27 of the 37 features.
        assert sum(1 for s in FEATURES if s.novel) == 27

    def test_reused_features_have_citations(self):
        for spec in FEATURES:
            if not spec.novel:
                assert spec.citation, spec.fid

    def test_unique_names(self):
        names = feature_names()
        assert len(set(names)) == len(names)


class TestLookups:
    def test_indices_of_groups(self):
        graph = indices_of_groups({FeatureGroup.GRAPH})
        assert graph == list(range(6, 25))

    def test_indices_of_multiple_groups(self):
        non_graph = indices_of_groups(
            {FeatureGroup.HIGH_LEVEL, FeatureGroup.HEADER,
             FeatureGroup.TEMPORAL}
        )
        assert len(non_graph) == 18
        assert not set(non_graph) & set(
            indices_of_groups({FeatureGroup.GRAPH})
        )

    def test_spec_by_name(self):
        spec = spec_by_name("avg_pagerank")
        assert spec.fid == "f25"
        assert spec.group is FeatureGroup.GRAPH

    def test_spec_by_name_unknown(self):
        with pytest.raises(KeyError, match="unknown feature"):
            spec_by_name("not_a_feature")

    def test_temporal_features_are_f36_f37(self):
        temporal = [s for s in FEATURES
                    if s.group is FeatureGroup.TEMPORAL]
        assert [s.fid for s in temporal] == ["f36", "f37"]
