"""Columnar extraction differentials (DESIGN.md §14).

Three byte-identity properties over the same corpus-derived streams the
live/batch differential uses:

* **engine parity** — the fast structural topology kernels
  (``REPRO_TOPOLOGY_ENGINE=fast``) equal the networkx object walk
  (``object``) on every construction prefix, in-order and shuffled;
* **batch parity** — ``extract_batch`` / ``extract_matrix_batch`` rows
  equal per-graph ``extract`` rows, bit for bit;
* **pair-sample sharing** — the connectivity pair sample is one seeded
  stream shared by both paths, and an explicit seed reproduces it.

Plus bounding regressions: the structural topology LRU must hold at
most its configured entry count no matter how many distinct graphs a
long-running extractor sees.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.builder import WCGBuilder, build_wcg
from repro.features.extractor import (
    FeatureExtractor,
    extract_matrix_batch,
)
from repro.features.graph import (
    average_node_connectivity_sampled,
    sample_connectivity_pairs,
)
from repro.synthesis.corpus import ground_truth_corpus

_PREFIX_CAP = 24  # transactions per stream (keeps the O(n^2) walk fast)


def _streams():
    corpus = ground_truth_corpus(seed=131, scale=0.02)
    picked = corpus.infections[:3] + corpus.benign[:3]
    rng = random.Random(53)
    streams = []
    for trace in picked:
        txns = list(trace.transactions)[:_PREFIX_CAP]
        streams.append(("in-order", sorted(txns, key=lambda t: t.timestamp)))
        shuffled = list(txns)
        rng.shuffle(shuffled)
        streams.append(("shuffled", shuffled))
    return streams


@pytest.mark.parametrize(
    "label, txns", _streams(),
    ids=lambda value: value if isinstance(value, str) else "",
)
def test_fast_engine_matches_object_walk_per_prefix(label, txns):
    """The structural kernels equal the networkx reference after every
    construction prefix — including out-of-order replays."""
    builder = WCGBuilder()
    fast = FeatureExtractor(topology_engine="fast")
    for count in range(1, len(txns) + 1):
        builder.add(txns[count - 1])
        live = builder.build()
        fast_vector = fast.extract(live)
        object_vector = FeatureExtractor(topology_engine="object").extract(
            build_wcg(txns[:count])
        )
        assert fast_vector.tobytes() == object_vector.tobytes(), (
            f"engine divergence after prefix of {count} ({label}): "
            f"{fast_vector - object_vector}"
        )


def _corpus_graphs(scale=0.05, seed=173):
    corpus = ground_truth_corpus(seed=seed, scale=scale)
    return [build_wcg(trace) for trace in corpus.traces]


class TestBatchParity:
    def test_batch_rows_equal_scalar_rows(self):
        graphs = _corpus_graphs()
        matrix = FeatureExtractor().extract_batch(graphs)
        reference = np.vstack(
            [FeatureExtractor().extract(wcg) for wcg in graphs]
        )
        assert matrix.shape == reference.shape
        assert matrix.tobytes() == reference.tobytes()

    def test_module_level_batch_matches(self):
        graphs = _corpus_graphs(scale=0.02)
        assert np.array_equal(
            extract_matrix_batch(graphs),
            np.vstack([FeatureExtractor().extract(g) for g in graphs]),
        )

    def test_batch_serves_and_fills_the_vector_cache(self):
        graphs = _corpus_graphs(scale=0.02)
        extractor = FeatureExtractor()
        first = extractor.extract_batch(graphs)
        # Second pass: every row comes from the per-graph cache.
        second = extractor.extract_batch(graphs)
        assert first.tobytes() == second.tobytes()
        # And scalar extraction reuses the rows the batch cached.
        row = extractor.extract(graphs[0])
        assert row.tobytes() == first[0].tobytes()

    def test_empty_batch(self):
        matrix = FeatureExtractor().extract_batch([])
        assert matrix.shape == (0, 37)


class TestPairSampling:
    def test_explicit_seed_is_deterministic(self):
        assert (sample_connectivity_pairs(40, pair_cap=50, seed=7)
                == sample_connectivity_pairs(40, pair_cap=50, seed=7))
        assert (sample_connectivity_pairs(40, pair_cap=50, seed=7)
                != sample_connectivity_pairs(40, pair_cap=50, seed=8))

    def test_default_seed_derives_from_count(self):
        # The order-derived default is what both extraction paths share.
        assert (sample_connectivity_pairs(40, pair_cap=50)
                == sample_connectivity_pairs(
                    40, pair_cap=50, seed=40 * 2654435761 % (2**32)))

    def test_small_graphs_enumerate_every_pair(self):
        assert sample_connectivity_pairs(4) == [
            (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)
        ]
        assert sample_connectivity_pairs(1) == []

    def test_connectivity_accepts_explicit_seed(self):
        import networkx as nx
        graph = nx.gnm_random_graph(30, 70, seed=3)
        a = average_node_connectivity_sampled(graph, pair_cap=20, seed=5)
        b = average_node_connectivity_sampled(graph, pair_cap=20, seed=5)
        assert a == b


class TestStructuralCacheBounds:
    def test_lru_never_exceeds_its_cap(self):
        extractor = FeatureExtractor(structure_cache_size=8)
        graphs = _corpus_graphs(scale=0.03)
        assert len(graphs) > 8
        for wcg in graphs:
            extractor.extract(wcg)
            assert extractor.structure_cache_len <= 8
        # Eviction must not corrupt results: re-extraction of an
        # already-seen (possibly evicted) structure still matches a
        # fresh extractor bit for bit.
        for wcg in graphs[:4]:
            wcg.dnt = not wcg.dnt  # force a vector recompute
            assert np.array_equal(
                extractor.extract(wcg), FeatureExtractor().extract(wcg)
            )

    def test_shared_structures_hit_across_graphs(self):
        from repro.obs import MetricsRegistry, use_registry
        from tests.conftest import make_txn

        registry = MetricsRegistry()
        with use_registry(registry):
            extractor = FeatureExtractor()
            # Two distinct graph objects, same conversation shape.
            extractor.extract(build_wcg([make_txn(ts=1.0)]))
            extractor.extract(build_wcg([make_txn(ts=2.0)]))
        counters = registry.snapshot()["counters"]
        assert counters["features.topology_cache_misses"] == 1
        assert counters["features.topology_cache_hits"] == 1

    def test_unknown_engine_rejected(self):
        from repro.exceptions import FeatureError
        with pytest.raises(FeatureError):
            FeatureExtractor(topology_engine="quantum")


class TestBatchCounters:
    def test_batch_counters_track_rows(self):
        from repro.obs import MetricsRegistry, use_registry

        graphs = _corpus_graphs(scale=0.02)
        registry = MetricsRegistry()
        with use_registry(registry):
            extractor = FeatureExtractor()
            extractor.extract_batch(graphs)
            extractor.extract_batch(graphs[:3])
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        assert counters["features.batch_extracts"] == 2
        assert counters["features.batch_rows"] == len(graphs) + 3
        # The extraction-latency histogram feeds PipelineStatsReporter.
        assert snapshot["histograms"]["span.features.extract_batch"][
            "count"] == 2
