"""Unit tests for the individual feature computations (HLF/GF/HF/TF)."""

import networkx as nx
import numpy as np
import pytest

from repro.core.builder import build_wcg
from repro.core.model import HttpMethod, Trace
from repro.features.graph import (
    average_node_connectivity_sampled,
    avg_nodes_within_k,
    graph_features,
)
from repro.features.header import header_features
from repro.features.high_level import high_level_features
from repro.features.temporal import temporal_features
from tests.conftest import make_txn


@pytest.fixture()
def wcg(simple_trace):
    return build_wcg(simple_trace)


class TestHighLevelFeatures:
    def test_origin_known(self, wcg):
        assert high_level_features(wcg)["origin"] == 1.0

    def test_origin_unknown(self):
        wcg = build_wcg([make_txn()])
        assert high_level_features(wcg)["origin"] == 0.0

    def test_x_flash(self):
        wcg = build_wcg([make_txn(extra_req_headers={"X-Flash-Version": "9"})])
        assert high_level_features(wcg)["x_flash_version"] == 1.0

    def test_wcg_size_counts_transactions(self, wcg):
        assert high_level_features(wcg)["wcg_size"] == 4.0

    def test_conversation_length_counts_hosts(self, wcg):
        # victim + start.com + mid.com (origin excluded)
        assert high_level_features(wcg)["conversation_length"] == 3.0

    def test_avg_uris_per_host(self, wcg):
        # start.com: 2 URIs; mid.com: 2 URIs -> avg 2.0
        assert high_level_features(wcg)["avg_uris_per_host"] == 2.0

    def test_avg_uri_length(self):
        wcg = build_wcg([make_txn(uri="/abc"), make_txn(uri="/abcdefgh",
                                                        ts=101.0)])
        value = high_level_features(wcg)["avg_uri_length"]
        assert value == pytest.approx((4 + 9) / 2)


class TestGraphFeatures:
    def test_order_and_size(self, wcg):
        features = graph_features(wcg)
        assert features["order"] == wcg.order
        assert features["size"] == wcg.size

    def test_volume_is_twice_size(self, wcg):
        features = graph_features(wcg)
        assert features["volume"] == 2 * wcg.size

    def test_degree_is_max_degree(self, wcg):
        features = graph_features(wcg)
        degrees = [d for _, d in wcg.graph.degree()]
        assert features["degree"] == max(degrees)

    def test_avg_pagerank_is_inverse_order(self, wcg):
        # Paper-faithful: mean PageRank == 1/order (module docstring).
        features = graph_features(wcg)
        assert features["avg_pagerank"] == pytest.approx(1.0 / wcg.order)

    def test_diameter_on_chain(self):
        txns = [
            make_txn(host="a.com", ts=1.0, status=302, content_type="",
                     extra_res_headers={"Location": "http://b.com/x"}),
            make_txn(host="b.com", ts=2.0, status=302, content_type="",
                     extra_res_headers={"Location": "http://c.com/x"}),
            make_txn(host="c.com", ts=3.0),
        ]
        features = graph_features(build_wcg(txns))
        assert features["diameter"] >= 2

    def test_density_bounds(self, wcg):
        assert 0.0 <= graph_features(wcg)["density"] <= 1.0

    def test_reciprocity_high_for_request_response(self, wcg):
        # Every request edge has a matching response edge here.
        features = graph_features(wcg)
        assert features["reciprocity"] > 0.5

    def test_all_features_finite(self, wcg):
        for name, value in graph_features(wcg).items():
            assert np.isfinite(value), name

    def test_single_edge_graph_degenerate_values(self):
        wcg = build_wcg([make_txn()])
        features = graph_features(wcg)
        assert features["order"] == 3.0  # victim + server + empty-origin
        assert np.isfinite(features["avg_closeness_centrality"])


class TestGraphHelpers:
    def test_avg_nodes_within_k_star(self):
        star = nx.star_graph(4)  # center + 4 leaves
        # every node reaches all 4 others within 2 hops
        assert avg_nodes_within_k(star, k=2) == 4.0

    def test_avg_nodes_within_k_path(self):
        path = nx.path_graph(5)
        value = avg_nodes_within_k(path, k=1)
        # degree average of a path: (1+2+2+2+1)/5
        assert value == pytest.approx(8 / 5)

    def test_avg_nodes_within_k_empty(self):
        assert avg_nodes_within_k(nx.Graph(), k=2) == 0.0

    def test_node_connectivity_exact_small(self):
        complete = nx.complete_graph(5)
        assert average_node_connectivity_sampled(complete) == pytest.approx(
            nx.average_node_connectivity(complete)
        )

    def test_node_connectivity_sampled_deterministic(self):
        graph = nx.gnm_random_graph(40, 80, seed=3)
        first = average_node_connectivity_sampled(graph, pair_cap=50)
        second = average_node_connectivity_sampled(graph, pair_cap=50)
        assert first == second

    def test_node_connectivity_trivial(self):
        assert average_node_connectivity_sampled(nx.Graph()) == 0.0
        single = nx.Graph()
        single.add_node(1)
        assert average_node_connectivity_sampled(single) == 0.0


class TestHeaderFeatures:
    def test_method_counts(self):
        txns = [
            make_txn(ts=1.0),
            make_txn(ts=2.0, method=HttpMethod.POST),
            make_txn(ts=3.0, method=HttpMethod.PUT),
        ]
        features = header_features(build_wcg(txns))
        assert features["gets"] == 1.0
        assert features["posts"] == 1.0
        assert features["other_methods"] == 1.0

    def test_status_class_counts(self):
        txns = [
            make_txn(ts=1.0, status=200),
            make_txn(ts=2.0, status=302, content_type="",
                     extra_res_headers={"Location": "http://x.com/"}),
            make_txn(ts=3.0, status=404),
            make_txn(ts=4.0, status=500),
            make_txn(ts=5.0, status=101),
        ]
        features = header_features(build_wcg(txns))
        assert features["http_10x"] == 1.0
        assert features["http_20x"] == 1.0
        assert features["http_30x"] == 1.0
        assert features["http_40x"] == 1.0
        assert features["http_50x"] == 1.0

    def test_referrer_counters(self):
        txns = [
            make_txn(ts=1.0, referrer="http://a.com/"),
            make_txn(ts=2.0),
            make_txn(ts=3.0),
        ]
        features = header_features(build_wcg(txns))
        assert features["referrer_ctrs"] == 1.0
        assert features["no_referrer_ctrs"] == 2.0


class TestTemporalFeatures:
    def test_avg_inter_transaction_time(self):
        txns = [make_txn(ts=0.0), make_txn(ts=10.0), make_txn(ts=30.0)]
        features = temporal_features(build_wcg(txns))
        assert features["avg_inter_transaction_time"] == pytest.approx(15.0)

    def test_duration_per_uri(self):
        txns = [
            make_txn(uri="/a", ts=0.0),
            make_txn(uri="/b", ts=10.0, res_delay=2.0),
        ]
        features = temporal_features(build_wcg(txns))
        # span 12 s over 2 URIs
        assert features["duration"] == pytest.approx(6.0)

    def test_single_transaction_zero_gap(self):
        features = temporal_features(build_wcg([make_txn()]))
        assert features["avg_inter_transaction_time"] == 0.0
