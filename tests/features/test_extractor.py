"""Unit + property tests for the feature extraction engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builder import build_wcg
from repro.core.model import Trace, TraceLabel
from repro.exceptions import FeatureError
from repro.features.extractor import (
    FeatureExtractor,
    extract_features,
    extract_matrix,
)
from repro.features.registry import NUM_FEATURES, feature_names
from repro.synthesis.benign import BenignGenerator
from repro.synthesis.families import family_by_name
from repro.synthesis.infection import InfectionGenerator
from tests.conftest import make_txn


class TestExtractor:
    def test_vector_shape(self, simple_trace):
        vector = FeatureExtractor().extract_trace(simple_trace)
        assert vector.shape == (NUM_FEATURES,)
        assert vector.dtype == np.float64

    def test_all_finite(self, simple_trace):
        assert np.all(np.isfinite(
            FeatureExtractor().extract_trace(simple_trace)
        ))

    def test_registry_order(self, simple_trace):
        wcg = build_wcg(simple_trace)
        vector = extract_features(wcg)
        names = feature_names()
        # f1 origin known -> 1.0 at index 0
        assert names[0] == "origin"
        assert vector[0] == 1.0
        # f7 order at index 6
        assert names[6] == "order"
        assert vector[6] == wcg.order

    def test_deterministic(self, simple_trace):
        extractor = FeatureExtractor()
        first = extractor.extract_trace(simple_trace)
        second = extractor.extract_trace(simple_trace)
        assert np.array_equal(first, second)

    def test_degenerate_single_transaction(self):
        vector = FeatureExtractor().extract_trace(
            Trace(transactions=[make_txn()])
        )
        assert np.all(np.isfinite(vector))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6),
           family=st.sampled_from(["Angler", "RIG", "Goon"]))
    def test_any_infection_episode_extractable(self, seed, family):
        """Property: every generated episode yields a finite vector."""
        rng = np.random.default_rng(seed)
        trace = InfectionGenerator(family_by_name(family), rng).generate()
        vector = FeatureExtractor().extract_trace(trace)
        assert vector.shape == (NUM_FEATURES,)
        assert np.all(np.isfinite(vector))

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_any_benign_episode_extractable(self, seed):
        rng = np.random.default_rng(seed)
        trace = BenignGenerator(rng).generate()
        vector = FeatureExtractor().extract_trace(trace)
        assert np.all(np.isfinite(vector))


class TestExtractMatrix:
    def test_shapes_and_labels(self, tiny_corpus):
        X, y = extract_matrix(tiny_corpus.traces[:20])
        assert X.shape == (20, NUM_FEATURES)
        assert set(np.unique(y)) <= {0.0, 1.0}

    def test_label_assignment(self):
        benign = Trace(transactions=[make_txn()], label=TraceLabel.BENIGN)
        infection = Trace(transactions=[make_txn()],
                          label=TraceLabel.INFECTION)
        _, y = extract_matrix([benign, infection])
        assert list(y) == [0.0, 1.0]

    def test_unlabelled_raises(self):
        with pytest.raises(FeatureError, match="labelled"):
            extract_matrix([Trace(transactions=[make_txn()])])

    def test_empty_input(self):
        X, y = extract_matrix([])
        assert X.shape == (0, NUM_FEATURES)
        assert y.shape == (0,)
