"""Tests for IPv4 fragment reassembly."""

import struct

import numpy as np
import pytest

from repro.net.packets import (
    ACK,
    PSH,
    IpFragmentReassembler,
    Ipv4Packet,
    decode_ethernet,
    decode_ipv4,
    decode_tcp,
    encode_tcp_in_ipv4_ethernet,
)
from repro.net.flows import transactions_from_packets
from repro.net.pcap import PcapPacket
from repro.core.model import Trace
from tests.conftest import make_txn


def _fragment(src="1.1.1.1", dst="2.2.2.2", proto=6, ident=7,
              offset=0, more=True, payload=b""):
    return Ipv4Packet(
        src=src, dst=dst, protocol=proto, payload=payload, ident=ident,
        more_fragments=more, frag_offset=offset,
    )


class TestReassembler:
    def test_passthrough_unfragmented(self):
        reasm = IpFragmentReassembler()
        packet = _fragment(more=False, offset=0, payload=b"whole")
        assert reasm.feed(packet) is packet

    def test_two_fragments_in_order(self):
        reasm = IpFragmentReassembler()
        assert reasm.feed(_fragment(offset=0, more=True,
                                    payload=b"A" * 8)) is None
        out = reasm.feed(_fragment(offset=8, more=False, payload=b"B" * 4))
        assert out is not None
        assert out.payload == b"A" * 8 + b"B" * 4
        assert not out.is_fragment

    def test_out_of_order_fragments(self):
        reasm = IpFragmentReassembler()
        assert reasm.feed(_fragment(offset=8, more=False,
                                    payload=b"tail")) is None
        out = reasm.feed(_fragment(offset=0, more=True, payload=b"x" * 8))
        assert out is not None
        assert out.payload == b"x" * 8 + b"tail"

    def test_hole_blocks_completion(self):
        reasm = IpFragmentReassembler()
        assert reasm.feed(_fragment(offset=0, more=True,
                                    payload=b"a" * 8)) is None
        # Missing [8, 16); the final piece is at 16.
        assert reasm.feed(_fragment(offset=16, more=False,
                                    payload=b"c" * 4)) is None

    def test_independent_datagrams(self):
        reasm = IpFragmentReassembler()
        assert reasm.feed(_fragment(ident=1, offset=0, more=True,
                                    payload=b"1" * 8)) is None
        assert reasm.feed(_fragment(ident=2, offset=0, more=True,
                                    payload=b"2" * 8)) is None
        out1 = reasm.feed(_fragment(ident=1, offset=8, more=False,
                                    payload=b"end"))
        assert out1 is not None and out1.payload.startswith(b"1")
        out2 = reasm.feed(_fragment(ident=2, offset=8, more=False,
                                    payload=b"end"))
        assert out2 is not None and out2.payload.startswith(b"2")

    def test_pending_cap_evicts_oldest(self):
        reasm = IpFragmentReassembler(max_pending=2)
        reasm.feed(_fragment(ident=1, offset=0, more=True, payload=b"x" * 8))
        reasm.feed(_fragment(ident=2, offset=0, more=True, payload=b"y" * 8))
        reasm.feed(_fragment(ident=3, offset=0, more=True, payload=b"z" * 8))
        # ident=1 was evicted; completing it now fails (still pending tail).
        out = reasm.feed(_fragment(ident=1, offset=8, more=False,
                                   payload=b"end"))
        assert out is None


class TestPipelineWithFragments:
    def _fragment_frame(self, frame: bytes, mtu_payload: int = 24):
        """Split one Ethernet/IPv4/TCP frame into IP fragments."""
        eth, ip_header, rest = frame[:14], frame[14:34], frame[34:]
        fragments = []
        offset = 0
        while offset < len(rest):
            chunk = rest[offset:offset + mtu_payload]
            more = offset + mtu_payload < len(rest)
            flags_frag = ((0x2000 if more else 0) | (offset // 8))
            hdr = bytearray(ip_header)
            total_len = 20 + len(chunk)
            hdr[2:4] = struct.pack("!H", total_len)
            hdr[6:8] = struct.pack("!H", flags_frag)
            hdr[10:12] = b"\x00\x00"  # checksum (unverified on decode)
            fragments.append(bytes(eth) + bytes(hdr) + chunk)
            offset += mtu_payload
        return fragments

    def test_http_over_fragmented_ip(self):
        trace = Trace(transactions=[
            make_txn(host="frag.com", uri="/page", body=b"F" * 200),
        ])
        from repro.net.flows import packets_from_trace
        packets, book = packets_from_trace(trace)
        # Fragment every data-bearing frame.
        exploded = []
        for packet in packets:
            if len(packet.data) > 100:
                for piece in self._fragment_frame(packet.data):
                    exploded.append(PcapPacket(timestamp=packet.timestamp,
                                               data=piece))
            else:
                exploded.append(packet)
        transactions = transactions_from_packets(exploded, book=book)
        assert len(transactions) == 1
        assert transactions[0].response.body == b"F" * 200
