"""Unit + property tests for TCP stream reassembly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TcpReassemblyError
from repro.net.packets import ACK, FIN, PSH, RST, SYN, TcpSegment
from repro.net.reassembly import FlowKey, StreamDirection, TcpReassembler


def _segment(src_port=40000, dst_port=80, seq=0, flags=ACK, payload=b""):
    return TcpSegment(src_port=src_port, dst_port=dst_port, seq=seq,
                      ack=0, flags=flags, payload=payload)


class TestFlowKey:
    def test_canonical_both_directions(self):
        forward = FlowKey.of("1.1.1.1", 40000, "2.2.2.2", 80)
        backward = FlowKey.of("2.2.2.2", 80, "1.1.1.1", 40000)
        assert forward == backward

    def test_distinct_connections_differ(self):
        a = FlowKey.of("1.1.1.1", 40000, "2.2.2.2", 80)
        b = FlowKey.of("1.1.1.1", 40001, "2.2.2.2", 80)
        assert a != b


class TestHandshakeAndDirections:
    def _open_stream(self):
        reassembler = TcpReassembler()
        reassembler.feed(1.0, "10.0.0.1", "10.0.0.2",
                         _segment(seq=99, flags=SYN))
        reassembler.feed(1.1, "10.0.0.2", "10.0.0.1",
                         _segment(src_port=80, dst_port=40000, seq=499,
                                  flags=SYN | ACK))
        return reassembler

    def test_client_identified_by_syn(self):
        reassembler = self._open_stream()
        stream = reassembler.streams()[0]
        assert stream.client == ("10.0.0.1", 40000)
        assert stream.server == ("10.0.0.2", 80)

    def test_in_order_payload(self):
        reassembler = self._open_stream()
        reassembler.feed(1.2, "10.0.0.1", "10.0.0.2",
                         _segment(seq=100, flags=PSH | ACK, payload=b"GET "))
        reassembler.feed(1.3, "10.0.0.1", "10.0.0.2",
                         _segment(seq=104, flags=PSH | ACK, payload=b"/ HT"))
        stream = reassembler.streams()[0]
        assert stream.client_data == b"GET / HT"

    def test_out_of_order_payload(self):
        reassembler = self._open_stream()
        reassembler.feed(1.3, "10.0.0.1", "10.0.0.2",
                         _segment(seq=104, payload=b"/ HT"))
        reassembler.feed(1.2, "10.0.0.1", "10.0.0.2",
                         _segment(seq=100, payload=b"GET "))
        assert reassembler.streams()[0].client_data == b"GET / HT"

    def test_retransmission_ignored(self):
        reassembler = self._open_stream()
        reassembler.feed(1.2, "10.0.0.1", "10.0.0.2",
                         _segment(seq=100, payload=b"abcd"))
        reassembler.feed(1.3, "10.0.0.1", "10.0.0.2",
                         _segment(seq=100, payload=b"abcd"))
        assert reassembler.streams()[0].client_data == b"abcd"

    def test_overlapping_retransmission_trimmed(self):
        reassembler = self._open_stream()
        reassembler.feed(1.2, "10.0.0.1", "10.0.0.2",
                         _segment(seq=100, payload=b"abcd"))
        reassembler.feed(1.3, "10.0.0.1", "10.0.0.2",
                         _segment(seq=102, payload=b"cdEF"))
        assert reassembler.streams()[0].client_data == b"abcdEF"

    def test_server_data_separate(self):
        reassembler = self._open_stream()
        reassembler.feed(1.2, "10.0.0.1", "10.0.0.2",
                         _segment(seq=100, payload=b"req"))
        reassembler.feed(1.4, "10.0.0.2", "10.0.0.1",
                         _segment(src_port=80, dst_port=40000, seq=500,
                                  payload=b"res"))
        stream = reassembler.streams()[0]
        assert stream.client_data == b"req"
        assert stream.server_data == b"res"

    def test_fin_both_sides_closes(self):
        reassembler = self._open_stream()
        reassembler.feed(1.5, "10.0.0.1", "10.0.0.2",
                         _segment(seq=100, flags=FIN | ACK))
        stream = reassembler.streams()[0]
        assert not stream.closed
        reassembler.feed(1.6, "10.0.0.2", "10.0.0.1",
                         _segment(src_port=80, dst_port=40000, seq=500,
                                  flags=FIN | ACK))
        assert stream.closed

    def test_rst_closes_immediately(self):
        reassembler = self._open_stream()
        reassembler.feed(1.5, "10.0.0.2", "10.0.0.1",
                         _segment(src_port=80, dst_port=40000, seq=500,
                                  flags=RST))
        assert reassembler.streams()[0].closed


class TestMidCaptureStreams:
    def test_client_guessed_from_service_port(self):
        reassembler = TcpReassembler()
        reassembler.feed(1.0, "10.0.0.9", "10.0.0.2",
                         _segment(seq=7, payload=b"GET / HTTP/1.1\r\n"))
        stream = reassembler.streams()[0]
        assert stream.client == ("10.0.0.9", 40000)
        assert stream.client_data.startswith(b"GET")

    def test_seq_adopted_without_syn(self):
        reassembler = TcpReassembler()
        reassembler.feed(1.0, "10.0.0.9", "10.0.0.2",
                         _segment(seq=1000, payload=b"abc"))
        reassembler.feed(1.1, "10.0.0.9", "10.0.0.2",
                         _segment(seq=1003, payload=b"def"))
        assert reassembler.streams()[0].client_data == b"abcdef"


class TestSequenceWraparound:
    def test_payload_across_wrap(self):
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 2**32 - 2
        direction.feed(2**32 - 2, b"ab", 1.0)
        direction.feed(0, b"cd", 1.1)
        assert bytes(direction.data) == b"abcd"

    def test_fully_stale_segment_dropped(self):
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 100
        direction.feed(100, b"abcdef", 1.0)
        direction.feed(100, b"abc", 1.1)  # entirely behind next_seq
        assert bytes(direction.data) == b"abcdef"

    def test_gap_flag(self):
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 0
        direction.feed(10, b"later", 1.0)
        assert direction.has_gap
        direction.feed(0, b"0123456789", 1.1)
        assert not direction.has_gap
        assert bytes(direction.data) == b"0123456789later"

    def test_buffer_overflow_guard(self):
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 0
        with pytest.raises(TcpReassemblyError, match="overflow"):
            for index in range(40):
                direction.feed(
                    10_000_000 + index * 2_000_000, b"\x00" * 1_500_000, 1.0
                )


class TestTimestampAt:
    def test_epoch_zero_capture_not_treated_as_missing(self):
        # A capture clock starting at the epoch is a legitimate
        # timestamp; timestamp_at must not fall back as if unset.
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.feed(0, b"", 0.0)  # pure-ACK at t=0 pins first_ts
        assert direction.first_ts == 0.0
        assert direction.timestamp_at(0) == 0.0
        direction.feed(0, b"GET", 7.5)
        assert direction.timestamp_at(0) == 7.5

    def test_marks_resolve_per_segment(self):
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 0
        direction.feed(0, b"aaaa", 1.0)
        direction.feed(4, b"bbbb", 2.0)
        assert direction.timestamp_at(0) == 1.0
        assert direction.timestamp_at(3) == 1.0
        assert direction.timestamp_at(4) == 2.0
        assert direction.timestamp_at(7) == 2.0


class TestConsumableView:
    def _loaded(self):
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 0
        direction.feed(0, b"first", 1.0)
        direction.feed(5, b"second", 2.0)
        return direction

    def test_take_advances_cursor(self):
        direction = self._loaded()
        assert direction.take() == b"firstsecond"
        assert direction.take() == b""
        direction.feed(11, b"third", 3.0)
        assert direction.take() == b"third"

    def test_compact_discards_consumed_prefix(self):
        direction = self._loaded()
        direction.take()
        direction.compact()
        assert direction.data == bytearray()
        assert direction.base == 11
        direction.feed(11, b"third", 3.0)
        assert direction.take() == b"third"
        assert direction.end_offset == 16

    def test_offsets_stay_absolute_across_compaction(self):
        direction = self._loaded()
        direction.take()
        direction.compact(keep_marks_from=5)
        # The mark covering offset 5 (and beyond) must survive.
        assert direction.timestamp_at(5) == 2.0
        assert direction.timestamp_at(10) == 2.0
        direction.feed(11, b"third", 3.0)
        assert direction.timestamp_at(11) == 3.0

    def test_compact_keeps_straddling_mark(self):
        direction = self._loaded()
        direction.take()
        direction.compact(keep_marks_from=7)  # mid-"second"
        assert direction.timestamp_at(7) == 2.0

    def test_batch_consumers_unaffected(self):
        direction = self._loaded()
        assert bytes(direction.data) == b"firstsecond"
        assert direction.base == 0


class TestOverlapDrain:
    """Regression: overlapping pending chunks must drain, not leak."""

    def test_overlapping_pending_chunks_drain(self):
        # pending at 100 (len 50) and 120 (len 50): once the hole fills,
        # the second chunk starts *behind* next_seq (150) but extends to
        # 170 — its fresh tail must be trimmed in, not lost, and nothing
        # may leak in `pending` forever.
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 0
        payload = bytes(range(200)) * 1  # 200 distinct-ish bytes
        direction.feed(100, payload[100:150], 2.0)
        direction.feed(120, payload[120:170], 3.0)
        direction.feed(0, payload[:100], 4.0)
        assert bytes(direction.data) == payload[:170]
        assert direction.pending == {}

    def test_drained_bytes_keep_arrival_timestamps(self):
        # Out-of-order bytes must be marked with their *true* arrival
        # time, not the time of the packet that filled the hole.
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 0
        direction.feed(4, b"bbbb", 2.0)
        direction.feed(0, b"aaaa", 9.0)
        assert bytes(direction.data) == b"aaaabbbb"
        assert direction.timestamp_at(0) == 9.0
        assert direction.timestamp_at(4) == 2.0

    def test_fully_stale_pending_chunk_discarded(self):
        # A pending chunk entirely covered by in-order data is dropped.
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 0
        direction.feed(10, b"XY", 2.0)
        direction.feed(0, b"0123456789AB", 3.0)  # covers [0, 12) > [10, 12)
        assert bytes(direction.data) == b"0123456789AB"
        assert direction.pending == {}

    @settings(max_examples=40, deadline=None)
    @given(
        chunks=st.lists(st.binary(min_size=1, max_size=64), min_size=2,
                        max_size=10),
        seed=st.integers(0, 10**6),
    )
    def test_overlapping_shuffled_slices_reassemble(self, chunks, seed):
        """Property: arbitrary overlapping re-slices still reassemble."""
        message = b"".join(chunks)
        rng = np.random.default_rng(seed)
        slices = []
        position = 0
        for chunk in chunks:
            lo = max(0, position - int(rng.integers(0, 8)))
            hi = min(len(message),
                     position + len(chunk) + int(rng.integers(0, 8)))
            slices.append((lo, message[lo:hi]))
            position += len(chunk)
        for index in rng.permutation(len(slices)):
            lo, data = slices[int(index)]
            slices.append((lo, data))
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 0
        for index in rng.permutation(len(slices)):
            lo, data = slices[int(index)]
            if data:
                direction.feed(lo, data, 1.0)
        assert bytes(direction.data) == message


class TestOverflowDegrade:
    """Regression: a hostile connection degrades itself, not the tap."""

    def _overflow_stream(self, reassembler, client, server):
        reassembler.feed(1.0, client, server, _segment(seq=99, flags=SYN))
        for index in range(40):
            reassembler.feed(
                2.0 + index, client, server,
                _segment(seq=10_000_000 + index * 2_000_000,
                         payload=b"\x00" * 1_500_000),
            )

    def test_reassembler_degrades_instead_of_raising(self):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            reassembler = TcpReassembler()
            # Overflowing one connection must not raise out of feed().
            self._overflow_stream(reassembler, "10.0.0.1", "10.0.0.2")
        counters = registry.snapshot()["counters"]
        assert counters["reassembly.overflows"] == 1
        stream = reassembler.streams()[0]
        direction = stream.direction(stream.client, stream.server)
        assert direction.broken
        assert direction.pending == {}  # buffered bytes released

    def test_broken_direction_stops_buffering(self):
        reassembler = TcpReassembler()
        self._overflow_stream(reassembler, "10.0.0.1", "10.0.0.2")
        stream = reassembler.streams()[0]
        direction = stream.direction(stream.client, stream.server)
        before = len(direction.data)
        # Further traffic on the broken direction is ignored quietly.
        reassembler.feed(99.0, "10.0.0.1", "10.0.0.2",
                         _segment(seq=100, payload=b"ignored"))
        assert len(direction.data) == before
        assert direction.pending == {}

    def test_other_connections_unaffected(self):
        reassembler = TcpReassembler()
        self._overflow_stream(reassembler, "10.0.0.1", "10.0.0.2")
        reassembler.feed(50.0, "10.0.0.3", "10.0.0.2",
                         _segment(src_port=40001, seq=7,
                                  payload=b"GET / HTTP/1.1\r\n"))
        healthy = [s for s in reassembler.streams()
                   if s.client and s.client[0] == "10.0.0.3"]
        assert healthy[0].client_data.startswith(b"GET")

    def test_configurable_buffer_cap(self):
        reassembler = TcpReassembler(max_buffered=1024)
        reassembler.feed(1.0, "10.0.0.1", "10.0.0.2",
                         _segment(seq=99, flags=SYN))
        reassembler.feed(2.0, "10.0.0.1", "10.0.0.2",
                         _segment(seq=10_000, payload=b"\x00" * 2048))
        stream = reassembler.streams()[0]
        assert stream.direction(stream.client, stream.server).broken


class TestReassemblyProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        chunks=st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                        max_size=12),
        seed=st.integers(0, 10**6),
    )
    def test_any_arrival_order_reassembles(self, chunks, seed):
        """Property: payload split arbitrarily and shuffled reassembles."""
        message = b"".join(chunks)
        offsets = []
        position = 0
        for chunk in chunks:
            offsets.append((position, chunk))
            position += len(chunk)
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(offsets))
        direction = StreamDirection(src=("a", 1), dst=("b", 2))
        direction.next_seq = 5000
        for index in order:
            offset, chunk = offsets[int(index)]
            direction.feed(5000 + offset, chunk, 1.0)
        assert bytes(direction.data) == message
