"""Unit tests for the Ethernet/IPv4/TCP codecs."""

import pytest

from repro.exceptions import PcapError
from repro.net.packets import (
    ACK,
    ETHERTYPE_IPV4,
    FIN,
    IPPROTO_TCP,
    PSH,
    RST,
    SYN,
    decode_ethernet,
    decode_ipv4,
    decode_tcp,
    encode_tcp_in_ipv4_ethernet,
    ipv4_checksum,
)


class TestChecksum:
    def test_known_value(self):
        # RFC 1071 example-style check: checksum of a buffer, when the
        # checksum field holds it, verifies to zero.
        data = b"\x45\x00\x00\x3c\x1c\x46\x40\x00\x40\x06" \
               b"\x00\x00\xac\x10\x0a\x63\xac\x10\x0a\x0c"
        checksum = ipv4_checksum(data)
        patched = data[:10] + checksum.to_bytes(2, "big") + data[12:]
        assert ipv4_checksum(patched) == 0

    def test_odd_length_padding(self):
        assert isinstance(ipv4_checksum(b"\x01\x02\x03"), int)

    def test_empty(self):
        assert ipv4_checksum(b"") == 0xFFFF


class TestEncodeDecode:
    def _frame(self, payload=b"hello", flags=PSH | ACK):
        return encode_tcp_in_ipv4_ethernet(
            "10.0.0.1", "10.0.0.2", 40000, 80, 1000, 2000, flags, payload,
        )

    def test_ethernet_layer(self):
        frame = decode_ethernet(self._frame())
        assert frame.ethertype == ETHERTYPE_IPV4
        assert len(frame.payload) > 0

    def test_ipv4_layer(self):
        ip = decode_ipv4(decode_ethernet(self._frame()).payload)
        assert ip.src == "10.0.0.1"
        assert ip.dst == "10.0.0.2"
        assert ip.protocol == IPPROTO_TCP

    def test_ipv4_checksum_valid(self):
        raw = decode_ethernet(self._frame()).payload
        assert ipv4_checksum(raw[:20]) == 0

    def test_tcp_layer(self):
        ip = decode_ipv4(decode_ethernet(self._frame()).payload)
        segment = decode_tcp(ip.payload)
        assert segment.src_port == 40000
        assert segment.dst_port == 80
        assert segment.seq == 1000
        assert segment.ack == 2000
        assert segment.payload == b"hello"

    def test_flags(self):
        for flags, attr in ((SYN, "syn"), (FIN, "fin"), (RST, "rst")):
            ip = decode_ipv4(
                decode_ethernet(self._frame(b"", flags)).payload
            )
            segment = decode_tcp(ip.payload)
            assert getattr(segment, attr)

    def test_ack_flag(self):
        ip = decode_ipv4(decode_ethernet(self._frame(b"", ACK)).payload)
        assert decode_tcp(ip.payload).is_ack

    def test_empty_payload(self):
        ip = decode_ipv4(decode_ethernet(self._frame(b"")).payload)
        assert decode_tcp(ip.payload).payload == b""

    def test_large_payload(self):
        payload = bytes(range(256)) * 5
        ip = decode_ipv4(decode_ethernet(self._frame(payload)).payload)
        assert decode_tcp(ip.payload).payload == payload

    def test_seq_wraparound_encoding(self):
        frame = encode_tcp_in_ipv4_ethernet(
            "1.1.1.1", "2.2.2.2", 1, 2, 2**32 + 5, 7, ACK,
        )
        segment = decode_tcp(decode_ipv4(decode_ethernet(frame).payload).payload)
        assert segment.seq == 5


class TestMalformed:
    def test_truncated_ethernet(self):
        with pytest.raises(PcapError, match="truncated Ethernet"):
            decode_ethernet(b"\x00" * 5)

    def test_truncated_ipv4(self):
        with pytest.raises(PcapError, match="truncated IPv4"):
            decode_ipv4(b"\x45\x00")

    def test_wrong_ip_version(self):
        data = bytearray(20)
        data[0] = (6 << 4) | 5  # IPv6 version nibble
        with pytest.raises(PcapError, match="not IPv4"):
            decode_ipv4(bytes(data))

    def test_bad_ihl(self):
        data = bytearray(20)
        data[0] = (4 << 4) | 2  # IHL=8 bytes < 20
        with pytest.raises(PcapError, match="bad IPv4 IHL"):
            decode_ipv4(bytes(data))

    def test_fragment_surfaced_with_flags(self):
        data = bytearray(20)
        data[0] = (4 << 4) | 5
        data[6] = 0x20  # more-fragments flag
        packet = decode_ipv4(bytes(data))
        assert packet.more_fragments
        assert packet.is_fragment

    def test_truncated_tcp(self):
        with pytest.raises(PcapError, match="truncated TCP"):
            decode_tcp(b"\x00" * 10)

    def test_bad_tcp_offset(self):
        data = bytearray(20)
        data[12] = 2 << 4  # offset 8 bytes < 20
        with pytest.raises(PcapError, match="bad TCP data offset"):
            decode_tcp(bytes(data))

    def test_bad_ip_address_string(self):
        with pytest.raises(PcapError, match="bad IPv4 address"):
            encode_tcp_in_ipv4_ethernet("nope", "1.2.3.4", 1, 2, 0, 0, ACK)
        with pytest.raises(PcapError, match="bad IPv4 address"):
            encode_tcp_in_ipv4_ethernet("1.2.3.999", "1.2.3.4", 1, 2, 0, 0,
                                        ACK)
