"""Failure-injection tests: the decode pipeline on dirty captures."""

import struct

import numpy as np
import pytest

from repro.core.model import Trace
from repro.net.flows import packets_from_trace, transactions_from_packets
from repro.net.packets import (
    ACK,
    PSH,
    encode_tcp_in_ipv4_ethernet,
)
from repro.net.pcap import PcapPacket
from tests.conftest import make_txn


def _clean_capture():
    trace = Trace(transactions=[
        make_txn(host="a.com", uri="/1", ts=1.0),
        make_txn(host="b.com", uri="/2", ts=2.0),
    ])
    return packets_from_trace(trace)


def _udp_packet(ts: float) -> PcapPacket:
    """An Ethernet/IPv4/UDP packet the TCP pipeline must skip."""
    eth = struct.pack("!6s6sH", b"\x02" * 6, b"\x04" * 6, 0x0800)
    payload = b"dns-ish"
    total = 20 + 8 + len(payload)
    ip = struct.pack(
        "!BBHHHBBH4s4s", (4 << 4) | 5, 0, total, 0, 0, 64, 17, 0,
        bytes([10, 0, 0, 1]), bytes([10, 0, 0, 2]),
    )
    udp = struct.pack("!HHHH", 53, 53, 8 + len(payload), 0) + payload
    return PcapPacket(timestamp=ts, data=eth + ip + udp)


def _arp_packet(ts: float) -> PcapPacket:
    """A non-IPv4 Ethernet frame (ARP)."""
    eth = struct.pack("!6s6sH", b"\xff" * 6, b"\x02" * 6, 0x0806)
    return PcapPacket(timestamp=ts, data=eth + b"\x00" * 28)


class TestNoiseResilience:
    def test_udp_and_arp_skipped(self):
        packets, book = _clean_capture()
        noisy = sorted(
            packets + [_udp_packet(0.5), _arp_packet(0.6), _udp_packet(3.0)],
            key=lambda p: p.timestamp,
        )
        transactions = transactions_from_packets(noisy, book=book)
        assert len(transactions) == 2

    def test_stray_tcp_without_http(self):
        packets, book = _clean_capture()
        stray = PcapPacket(
            timestamp=0.7,
            data=encode_tcp_in_ipv4_ethernet(
                "10.9.9.9", "10.8.8.8", 5555, 6666, 1, 1, PSH | ACK,
                b"\x00\x01\x02 not http at all",
            ),
        )
        noisy = sorted(packets + [stray], key=lambda p: p.timestamp)
        # The stray stream is not HTTP; it is skipped, the rest survive.
        transactions = transactions_from_packets(noisy, book=book)
        assert len(transactions) == 2

    def test_duplicate_packets_are_idempotent(self):
        packets, book = _clean_capture()
        doubled = sorted(packets + packets, key=lambda p: p.timestamp)
        transactions = transactions_from_packets(doubled, book=book)
        assert len(transactions) == 2

    def test_dropped_handshake_still_parses(self):
        packets, book = _clean_capture()
        # Strip SYN/SYN-ACK/ACK (the first three frames per connection
        # carry no payload).
        data_only = [p for p in packets if len(p.data) > 54 + 20]
        transactions = transactions_from_packets(data_only, book=book)
        assert len(transactions) == 2

    def test_shuffled_segments_reassemble(self):
        trace = Trace(transactions=[
            make_txn(host="big.com", uri="/blob",
                     body=b"A" * 5000, ts=1.0),
        ])
        packets, book = packets_from_trace(trace)
        rng = np.random.default_rng(0)
        shuffled = list(packets)
        rng.shuffle(shuffled)
        transactions = transactions_from_packets(shuffled, book=book)
        assert len(transactions) == 1
        assert transactions[0].response.body == b"A" * 5000
