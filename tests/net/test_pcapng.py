"""Tests for the pcapng reader (hand-built wire blocks)."""

import io
import struct

import pytest

from repro.exceptions import PcapError
from repro.net.pcap import LINKTYPE_ETHERNET, PcapPacket, write_pcap
from repro.net.pcapng import PcapngReader, read_capture, read_pcapng


def _pad(data: bytes) -> bytes:
    return data + b"\x00" * ((4 - len(data) % 4) % 4)


def _block(block_type: int, body: bytes) -> bytes:
    body = _pad(body)
    length = 12 + len(body)
    return (struct.pack("<II", block_type, length) + body
            + struct.pack("<I", length))


def _shb() -> bytes:
    body = struct.pack("<IHHq", 0x1A2B3C4D, 1, 0, -1)
    return _block(0x0A0D0D0A, body)


def _idb(linktype: int = LINKTYPE_ETHERNET, tsresol: int | None = None) -> bytes:
    body = struct.pack("<HHI", linktype, 0, 65535)
    if tsresol is not None:
        body += struct.pack("<HH", 9, 1) + bytes([tsresol]) + b"\x00" * 3
        body += struct.pack("<HH", 0, 0)  # end of options
    return _block(0x00000001, body)


def _epb(ticks: int, data: bytes, iface: int = 0) -> bytes:
    body = struct.pack(
        "<IIIII", iface, (ticks >> 32) & 0xFFFFFFFF, ticks & 0xFFFFFFFF,
        len(data), len(data),
    ) + data
    return _block(0x00000006, body)


def _spb(data: bytes) -> bytes:
    return _block(0x00000003, struct.pack("<I", len(data)) + data)


class TestPcapngReader:
    def test_basic_read(self):
        stream = io.BytesIO(_shb() + _idb() + _epb(5_000_000, b"hello"))
        reader = PcapngReader(stream)
        packets = list(reader)
        assert reader.linktype == LINKTYPE_ETHERNET
        assert len(packets) == 1
        assert packets[0].data == b"hello"
        assert packets[0].timestamp == pytest.approx(5.0)  # usec default

    def test_tsresol_nanoseconds(self):
        stream = io.BytesIO(
            _shb() + _idb(tsresol=9) + _epb(5_000_000_000, b"x")
        )
        packets = list(PcapngReader(stream))
        assert packets[0].timestamp == pytest.approx(5.0)

    def test_tsresol_power_of_two(self):
        stream = io.BytesIO(
            _shb() + _idb(tsresol=0x80 | 10) + _epb(1024, b"x")
        )
        packets = list(PcapngReader(stream))
        assert packets[0].timestamp == pytest.approx(1.0)

    def test_simple_packet_block(self):
        stream = io.BytesIO(_shb() + _idb() + _spb(b"raw"))
        packets = list(PcapngReader(stream))
        assert packets[0].data == b"raw"

    def test_unknown_blocks_skipped(self):
        name_block = _block(0x00000BAD, b"ignore me")
        stream = io.BytesIO(_shb() + _idb() + name_block
                            + _epb(1, b"ok"))
        packets = list(PcapngReader(stream))
        assert len(packets) == 1

    def test_multiple_packets(self):
        stream = io.BytesIO(
            _shb() + _idb() + _epb(1, b"a") + _epb(2, b"bb") + _epb(3, b"ccc")
        )
        packets = list(PcapngReader(stream))
        assert [p.data for p in packets] == [b"a", b"bb", b"ccc"]

    def test_not_pcapng(self):
        with pytest.raises(PcapError, match="not a pcapng"):
            PcapngReader(io.BytesIO(b"\xd4\xc3\xb2\xa1" + b"\x00" * 20))

    def test_epb_unknown_interface(self):
        stream = io.BytesIO(_shb() + _epb(1, b"x", iface=3))
        with pytest.raises(PcapError, match="unknown interface"):
            list(PcapngReader(stream))

    def test_block_length_mismatch(self):
        good = _epb(1, b"x")
        corrupted = good[:-4] + struct.pack("<I", 999)
        stream = io.BytesIO(_shb() + _idb() + corrupted)
        with pytest.raises(PcapError, match="mismatch"):
            list(PcapngReader(stream))


class TestReadCapture:
    def test_sniffs_pcapng(self, tmp_path):
        path = str(tmp_path / "c.pcapng")
        with open(path, "wb") as handle:
            handle.write(_shb() + _idb() + _epb(7_000_000, b"data"))
        linktype, packets = read_capture(path)
        assert linktype == LINKTYPE_ETHERNET
        assert packets[0].data == b"data"

    def test_sniffs_classic_pcap(self, tmp_path):
        path = str(tmp_path / "c.pcap")
        write_pcap(path, [PcapPacket(timestamp=1.0, data=b"classic")])
        linktype, packets = read_capture(path)
        assert packets[0].data == b"classic"

    def test_read_pcapng_file_helper(self, tmp_path):
        path = str(tmp_path / "h.pcapng")
        with open(path, "wb") as handle:
            handle.write(_shb() + _idb() + _epb(1, b"z"))
        linktype, packets = read_pcapng(path)
        assert len(packets) == 1


class TestMultiSection:
    def test_new_section_resets_interfaces(self):
        stream = io.BytesIO(
            _shb() + _idb() + _epb(1_000_000, b"first")
            + _shb() + _idb(linktype=101) + _epb(2_000_000, b"second")
        )
        reader = PcapngReader(stream)
        packets = list(reader)
        assert [p.data for p in packets] == [b"first", b"second"]
        # linktype reflects the most recent section's first interface
        assert reader.linktype == 101
