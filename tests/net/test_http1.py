"""Unit + property tests for the HTTP/1.x wire parser/serializer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import Headers
from repro.exceptions import HttpParseError
from repro.net.http1 import (
    RawHttpRequest,
    RawHttpResponse,
    RequestParser,
    ResponseParser,
    parse_requests,
    parse_responses,
    serialize_request,
    serialize_response,
)


class TestParseRequests:
    def test_simple_get(self):
        data = b"GET /x HTTP/1.1\r\nHost: a.com\r\n\r\n"
        requests = parse_requests(data)
        assert len(requests) == 1
        assert requests[0].method == "GET"
        assert requests[0].uri == "/x"
        assert requests[0].headers.get("Host") == "a.com"
        assert requests[0].body == b""

    def test_post_with_body(self):
        data = (b"POST /p HTTP/1.1\r\nHost: a\r\nContent-Length: 5\r\n\r\n"
                b"hello")
        requests = parse_requests(data)
        assert requests[0].body == b"hello"

    def test_pipelined_requests(self):
        data = (b"GET /1 HTTP/1.1\r\nHost: a\r\n\r\n"
                b"GET /2 HTTP/1.1\r\nHost: a\r\n\r\n")
        requests = parse_requests(data)
        assert [r.uri for r in requests] == ["/1", "/2"]

    def test_chunked_request_body(self):
        data = (b"POST /c HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"5\r\nhello\r\n3\r\n!!!\r\n0\r\n\r\n")
        requests = parse_requests(data)
        assert requests[0].body == b"hello!!!"

    def test_truncated_trailing_request_dropped(self):
        data = (b"GET /1 HTTP/1.1\r\nHost: a\r\n\r\n"
                b"GET /2 HTTP/1.1\r\nHost:")
        requests = parse_requests(data)
        assert len(requests) == 1

    def test_truncated_trailing_body_dropped(self):
        data = (b"POST /p HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort")
        assert parse_requests(data) == []

    def test_bad_request_line(self):
        with pytest.raises(HttpParseError, match="bad request line"):
            parse_requests(b"NOT_A_REQUEST\r\n\r\n")

    def test_bad_header_line(self):
        with pytest.raises(HttpParseError, match="malformed header"):
            parse_requests(b"GET / HTTP/1.1\r\nbroken header\r\n\r\n")

    def test_header_folding(self):
        data = (b"GET / HTTP/1.1\r\nX-Long: part1\r\n  part2\r\n\r\n")
        requests = parse_requests(data)
        assert requests[0].headers.get("X-Long") == "part1 part2"

    def test_negative_content_length(self):
        data = b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        with pytest.raises(HttpParseError, match="negative Content-Length"):
            parse_requests(data)

    def test_non_numeric_content_length(self):
        data = b"POST / HTTP/1.1\r\nContent-Length: abc\r\n\r\n"
        with pytest.raises(HttpParseError, match="bad Content-Length"):
            parse_requests(data)


class TestParseResponses:
    def test_simple_response(self):
        data = (b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nhi")
        responses = parse_responses(data)
        assert responses[0].status == 200
        assert responses[0].reason == "OK"
        assert responses[0].body == b"hi"

    def test_redirect_response(self):
        data = (b"HTTP/1.1 302 Found\r\nLocation: http://x.com/\r\n"
                b"Content-Length: 0\r\n\r\n")
        responses = parse_responses(data)
        assert responses[0].status == 302
        assert responses[0].headers.get("Location") == "http://x.com/"

    def test_chunked_response(self):
        data = (b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n")
        responses = parse_responses(data)
        assert responses[0].body == b"wikipedia"

    def test_chunk_extension_ignored(self):
        data = (b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"4;name=value\r\nwiki\r\n0\r\n\r\n")
        assert parse_responses(data)[0].body == b"wiki"

    def test_read_until_close(self):
        data = (b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n"
                b"no length header, read to EOF")
        responses = parse_responses(data, closed=True)
        assert responses[0].body == b"no length header, read to EOF"

    def test_unclosed_without_length_defers(self):
        data = (b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\npartial")
        assert parse_responses(data, closed=False) == []

    def test_204_has_no_body(self):
        data = (b"HTTP/1.1 204 No Content\r\n\r\n"
                b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
        responses = parse_responses(data)
        assert len(responses) == 2
        assert responses[0].body == b""
        assert responses[1].body == b"ok"

    def test_pipelined_responses(self):
        data = (b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\na"
                b"HTTP/1.1 404 Not Found\r\nContent-Length: 1\r\n\r\nb")
        responses = parse_responses(data)
        assert [r.status for r in responses] == [200, 404]

    def test_bad_status_line(self):
        with pytest.raises(HttpParseError, match="bad status line"):
            parse_responses(b"200 OK\r\n\r\n")

    def test_bad_status_code(self):
        with pytest.raises(HttpParseError, match="bad status code"):
            parse_responses(b"HTTP/1.1 abc OK\r\n\r\n")

    def test_bad_chunk_size(self):
        data = (b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"zz\r\n")
        with pytest.raises(HttpParseError, match="bad chunk size"):
            parse_responses(data)

    def test_truncated_chunk(self):
        data = (b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
                b"ff\r\nshort")
        with pytest.raises(HttpParseError, match="truncated chunk body"):
            parse_responses(data)


class TestSerializeRoundTrip:
    def test_request_roundtrip(self):
        original = RawHttpRequest(
            method="POST", uri="/submit?x=1", version="HTTP/1.1",
            headers=Headers({"Host": "a.com", "X-Custom": "v"}),
            body=b"payload",
        )
        parsed = parse_requests(serialize_request(original))[0]
        assert parsed.method == original.method
        assert parsed.uri == original.uri
        assert parsed.body == original.body
        assert parsed.headers.get("X-Custom") == "v"

    def test_response_roundtrip(self):
        original = RawHttpResponse(
            version="HTTP/1.1", status=404, reason="Not Found",
            headers=Headers({"Content-Type": "text/html"}),
            body=b"<h1>404</h1>",
        )
        parsed = parse_responses(serialize_response(original))[0]
        assert parsed.status == 404
        assert parsed.body == original.body

    def test_serializer_strips_chunked(self):
        original = RawHttpResponse(
            version="HTTP/1.1", status=200, reason="OK",
            headers=Headers({"Transfer-Encoding": "chunked"}),
            body=b"abc",
        )
        wire = serialize_response(original)
        assert b"Transfer-Encoding" not in wire
        assert b"Content-Length: 3" in wire

    @settings(max_examples=50, deadline=None)
    @given(
        uri=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126,
                                   exclude_characters=" "),
            min_size=1, max_size=40,
        ).map(lambda s: "/" + s),
        body=st.binary(max_size=256),
        status=st.integers(200, 599),
    )
    def test_roundtrip_property(self, uri, body, status):
        """Property: serialize-then-parse is the identity."""
        request = RawHttpRequest("GET", uri, "HTTP/1.1",
                                 Headers({"Host": "h"}), body)
        parsed_request = parse_requests(serialize_request(request))[0]
        assert parsed_request.uri == uri
        assert parsed_request.body == body

        response = RawHttpResponse("HTTP/1.1", status, "R",
                                   Headers(), body)
        parsed_response = parse_responses(serialize_response(response))[0]
        assert parsed_response.status == status
        assert parsed_response.body == body


def _chop(data: bytes, cuts: list[int]) -> list[bytes]:
    """Split ``data`` at the given (sorted, de-duplicated) positions."""
    positions = sorted({min(c % (len(data) + 1), len(data)) for c in cuts})
    pieces, previous = [], 0
    for position in positions + [len(data)]:
        pieces.append(data[previous:position])
        previous = position
    return pieces


_REQUEST_WIRE = (
    b"GET /one HTTP/1.1\r\nHost: a.com\r\n\r\n"
    b"POST /two HTTP/1.1\r\nHost: a.com\r\nContent-Length: 11\r\n\r\n"
    b"hello world"
    b"POST /three HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
    b"5\r\nhello\r\n7;ext=1\r\n world!\r\n0\r\nX-Trailer: v\r\n\r\n"
    b"GET /four HTTP/1.1\r\nHost: a.com\r\n\r\n"
)

_RESPONSE_WIRE = (
    b"HTTP/1.1 200 OK\r\nContent-Length: 5000\r\n\r\n"          # HEAD
    b"HTTP/1.1 302 Found\r\nLocation: http://x/\r\n"
    b"Content-Length: 0\r\n\r\n"
    b"HTTP/1.1 204 No Content\r\n\r\n"
    b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
    b"4\r\nwiki\r\n5\r\npedia\r\n0\r\n\r\n"
    b"HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n"
    b"read until close"
)
_RESPONSE_METHODS = ["HEAD", "GET", "GET", "GET", "GET"]


class TestIncrementalParsers:
    """The resumable parsers match the batch functions byte for byte,
    however the stream is sliced into deliveries."""

    def test_byte_at_a_time_requests(self):
        batch = parse_requests(_REQUEST_WIRE)
        parser = RequestParser()
        incremental = []
        for index in range(len(_REQUEST_WIRE)):
            incremental.extend(parser.feed(_REQUEST_WIRE[index:index + 1]))
        incremental.extend(parser.finish())
        assert incremental == batch
        assert [r.uri for r in incremental] == ["/one", "/two", "/three",
                                                "/four"]
        assert incremental[2].body == b"hello world!"

    def test_byte_at_a_time_responses(self):
        batch = parse_responses(_RESPONSE_WIRE, closed=True,
                                request_methods=_RESPONSE_METHODS)
        parser = ResponseParser(request_methods=_RESPONSE_METHODS)
        incremental = []
        for index in range(len(_RESPONSE_WIRE)):
            incremental.extend(parser.feed(_RESPONSE_WIRE[index:index + 1]))
        incremental.extend(parser.finish(closed=True))
        assert incremental == batch
        assert [r.status for r in incremental] == [200, 302, 204, 200, 200]
        assert incremental[0].body == b""          # HEAD: no body bytes
        assert incremental[3].body == b"wikipedia"
        assert incremental[4].body == b"read until close"

    def test_partial_state_survives_between_feeds(self):
        parser = RequestParser()
        assert parser.feed(b"POST /p HTTP/1.1\r\nContent-Le") == []
        assert parser.feed(b"ngth: 5\r\n\r\nhel") == []
        done = parser.feed(b"lo")
        assert len(done) == 1
        assert done[0].body == b"hello"
        assert done[0].offset == 0

    def test_offsets_are_stream_absolute(self):
        wire = (b"GET /1 HTTP/1.1\r\nHost: a\r\n\r\n"
                b"GET /2 HTTP/1.1\r\nHost: a\r\n\r\n")
        parser = RequestParser()
        first = parser.feed(wire[:30])
        second = parser.feed(wire[30:]) + parser.finish()
        offsets = [r.offset for r in first + second]
        assert offsets == [r.offset for r in parse_requests(wire)]

    def test_read_until_close_deferred_without_close(self):
        parser = ResponseParser()
        pending = parser.feed(b"HTTP/1.1 200 OK\r\n\r\npartial body")
        assert pending == []
        assert parser.finish(closed=False) == []

    def test_await_methods_pauses_until_request_known(self):
        methods: list[str] = []
        parser = ResponseParser(request_methods=methods, await_methods=True)
        wire = (b"HTTP/1.1 200 OK\r\nContent-Length: 5000\r\n\r\n"
                b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
        assert parser.feed(wire) == []  # no request parsed yet: hold
        methods.extend(["HEAD", "GET"])
        done = parser.feed(b"")
        assert [r.body for r in done] == [b"", b"ok"]

    def test_feed_after_finish_rejects_data(self):
        parser = RequestParser()
        parser.finish()
        assert parser.feed(b"") == []
        assert parser.finish() == []  # idempotent
        with pytest.raises(HttpParseError, match="stream end"):
            parser.feed(b"GET / HTTP/1.1\r\n\r\n")

    def test_truncated_chunk_raises_only_at_finish(self):
        parser = ResponseParser()
        assert parser.feed(
            b"HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\nff\r\nsho"
        ) == []
        with pytest.raises(HttpParseError, match="truncated chunk body"):
            parser.finish()

    @settings(max_examples=60, deadline=None)
    @given(cuts=st.lists(st.integers(0, 10**6), max_size=12))
    def test_any_request_slicing_matches_batch(self, cuts):
        parser = RequestParser()
        incremental = []
        for piece in _chop(_REQUEST_WIRE, cuts):
            incremental.extend(parser.feed(piece))
        incremental.extend(parser.finish())
        assert incremental == parse_requests(_REQUEST_WIRE)

    @settings(max_examples=60, deadline=None)
    @given(cuts=st.lists(st.integers(0, 10**6), max_size=12))
    def test_any_response_slicing_matches_batch(self, cuts):
        parser = ResponseParser(request_methods=_RESPONSE_METHODS)
        incremental = []
        for piece in _chop(_RESPONSE_WIRE, cuts):
            incremental.extend(parser.feed(piece))
        incremental.extend(parser.finish(closed=True))
        assert incremental == parse_responses(
            _RESPONSE_WIRE, closed=True, request_methods=_RESPONSE_METHODS
        )


class TestHeadResponses:
    def test_head_response_consumes_no_body(self):
        # HEAD response advertises an entity length but sends no body;
        # the next response must frame correctly.
        data = (b"HTTP/1.1 200 OK\r\nContent-Length: 5000\r\n\r\n"
                b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
        responses = parse_responses(data, request_methods=["HEAD", "GET"])
        assert len(responses) == 2
        assert responses[0].body == b""
        assert responses[1].body == b"ok"

    def test_without_method_hint_head_misframes(self):
        # Documents why the hint matters: blind parsing would swallow
        # the next response as body bytes.
        data = (b"HTTP/1.1 200 OK\r\nContent-Length: 5000\r\n\r\n"
                b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\nok")
        responses = parse_responses(data)
        assert len(responses) < 2

    def test_methods_shorter_than_responses(self):
        data = (b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\na"
                b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nb")
        responses = parse_responses(data, request_methods=["GET"])
        assert len(responses) == 2
