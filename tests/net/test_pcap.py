"""Unit + property tests for the pcap file format codec."""

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PcapError
from repro.net.pcap import (
    LINKTYPE_ETHERNET,
    LINKTYPE_RAW_IP,
    PcapPacket,
    PcapReader,
    PcapWriter,
    read_pcap,
    write_pcap,
)


def _roundtrip(packets, linktype=LINKTYPE_ETHERNET):
    buffer = io.BytesIO()
    writer = PcapWriter(buffer, linktype=linktype)
    for packet in packets:
        writer.write(packet)
    buffer.seek(0)
    reader = PcapReader(buffer)
    return reader, list(reader)


class TestRoundTrip:
    def test_empty_capture(self):
        reader, packets = _roundtrip([])
        assert packets == []
        assert reader.linktype == LINKTYPE_ETHERNET

    def test_single_packet(self):
        original = PcapPacket(timestamp=1234.5678, data=b"\x01\x02\x03")
        _, packets = _roundtrip([original])
        assert len(packets) == 1
        assert packets[0].data == original.data
        assert packets[0].timestamp == pytest.approx(original.timestamp,
                                                     abs=1e-6)
        assert packets[0].orig_len == 3

    def test_linktype_preserved(self):
        reader, _ = _roundtrip([], linktype=LINKTYPE_RAW_IP)
        assert reader.linktype == LINKTYPE_RAW_IP

    def test_microsecond_rounding_spillover(self):
        # .9999995 s rounds to 1,000,000 us and must carry into seconds.
        packet = PcapPacket(timestamp=10.9999995, data=b"x")
        _, packets = _roundtrip([packet])
        assert packets[0].timestamp == pytest.approx(11.0, abs=1e-6)

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=2**31,
                          allow_nan=False, allow_infinity=False),
                st.binary(min_size=0, max_size=512),
            ),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, raw):
        originals = [PcapPacket(timestamp=ts, data=data) for ts, data in raw]
        _, packets = _roundtrip(originals)
        assert len(packets) == len(originals)
        for original, decoded in zip(originals, packets):
            assert decoded.data == original.data
            assert decoded.timestamp == pytest.approx(original.timestamp,
                                                      abs=1e-5)


class TestMalformedInput:
    def test_bad_magic(self):
        with pytest.raises(PcapError, match="bad pcap magic"):
            PcapReader(io.BytesIO(b"\x00" * 24))

    def test_truncated_global_header(self):
        with pytest.raises(PcapError, match="truncated pcap global header"):
            PcapReader(io.BytesIO(b"\xd4\xc3\xb2\xa1"))

    def test_truncated_record_header(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.write(b"\x01\x02")  # partial record header
        buffer.seek(0)
        reader = PcapReader(buffer)
        with pytest.raises(PcapError, match="truncated pcap record header"):
            list(reader)

    def test_truncated_record_body(self):
        buffer = io.BytesIO()
        PcapWriter(buffer)
        buffer.write(struct.pack("<IIII", 0, 0, 100, 100))
        buffer.write(b"short")
        buffer.seek(0)
        with pytest.raises(PcapError, match="truncated pcap record body"):
            list(PcapReader(buffer))

    def test_record_exceeding_snaplen(self):
        buffer = io.BytesIO()
        PcapWriter(buffer, snaplen=64)
        buffer.write(struct.pack("<IIII", 0, 0, 1000, 1000))
        buffer.write(b"\x00" * 1000)
        buffer.seek(0)
        with pytest.raises(PcapError, match="exceeds snaplen"):
            list(PcapReader(buffer))


class TestBigEndianAndNanos:
    def test_big_endian_capture(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0,
                                 65535, LINKTYPE_ETHERNET))
        buffer.write(struct.pack(">IIII", 7, 500_000, 2, 2))
        buffer.write(b"hi")
        buffer.seek(0)
        reader = PcapReader(buffer)
        packets = list(reader)
        assert packets[0].timestamp == pytest.approx(7.5)
        assert packets[0].data == b"hi"

    def test_nanosecond_magic(self):
        buffer = io.BytesIO()
        buffer.write(struct.pack("<IHHiIII", 0xA1B23C4D, 2, 4, 0, 0,
                                 65535, LINKTYPE_ETHERNET))
        buffer.write(struct.pack("<IIII", 7, 500_000_000, 1, 1))
        buffer.write(b"x")
        buffer.seek(0)
        packets = list(PcapReader(buffer))
        assert packets[0].timestamp == pytest.approx(7.5)


class TestFileHelpers:
    def test_write_and_read_file(self, tmp_path):
        path = str(tmp_path / "capture.pcap")
        originals = [
            PcapPacket(timestamp=1.0, data=b"aaa"),
            PcapPacket(timestamp=2.0, data=b"bbbb"),
        ]
        count = write_pcap(path, originals)
        assert count == 2
        linktype, packets = read_pcap(path)
        assert linktype == LINKTYPE_ETHERNET
        assert [p.data for p in packets] == [b"aaa", b"bbbb"]

    def test_snaplen_truncation_on_write(self):
        buffer = io.BytesIO()
        writer = PcapWriter(buffer, snaplen=4)
        writer.write(PcapPacket(timestamp=0.0, data=b"longdata"))
        buffer.seek(0)
        packets = list(PcapReader(buffer))
        assert packets[0].data == b"long"
        assert packets[0].orig_len == 8
