"""End-to-end flow tests: trace -> packets -> transactions round trip."""

import numpy as np
import pytest

from repro.core.model import HttpMethod, Trace
from repro.net.flows import (
    AddressBook,
    packets_from_trace,
    trace_from_packets,
    transactions_from_packets,
)
from repro.synthesis.benign import BenignGenerator
from repro.synthesis.families import family_by_name
from repro.synthesis.infection import InfectionGenerator
from tests.conftest import make_txn


class TestAddressBook:
    def test_stable_mapping(self):
        book_a, book_b = AddressBook(), AddressBook()
        assert book_a.ip_of("example.com") == book_b.ip_of("example.com")

    def test_reverse_lookup(self):
        book = AddressBook()
        ip = book.ip_of("host.net")
        assert book.host_of(ip) == "host.net"

    def test_unknown_ip_passthrough(self):
        assert AddressBook().host_of("9.9.9.9") == "9.9.9.9"

    def test_distinct_hosts_distinct_ips(self):
        book = AddressBook()
        ips = {book.ip_of(f"host-{i}.com") for i in range(200)}
        assert len(ips) == 200


class TestRoundTrip:
    def test_single_transaction(self):
        trace = Trace(transactions=[
            make_txn(host="server.com", uri="/page",
                     body=b"<html>x</html>"),
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert len(recovered) == 1
        assert recovered[0].server == "server.com"
        assert recovered[0].request.uri == "/page"
        assert recovered[0].status == 200

    def test_multiple_hosts_multiple_connections(self):
        trace = Trace(transactions=[
            make_txn(host="a.com", ts=1.0),
            make_txn(host="b.com", ts=2.0),
            make_txn(host="a.com", uri="/2", ts=3.0),
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert len(recovered) == 3
        assert {t.server for t in recovered} == {"a.com", "b.com"}

    def test_persistent_connection_order(self):
        trace = Trace(transactions=[
            make_txn(host="a.com", uri=f"/{i}", ts=float(i))
            for i in range(1, 6)
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert [t.request.uri for t in recovered] == [
            "/1", "/2", "/3", "/4", "/5"
        ]

    def test_post_and_status_preserved(self):
        trace = Trace(transactions=[
            make_txn(host="cnc.xyz", uri="/gate.php", method=HttpMethod.POST,
                     status=404, body=b"nope"),
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert recovered[0].request.method is HttpMethod.POST
        assert recovered[0].status == 404

    def test_unanswered_request_survives(self):
        txn = make_txn(host="dead.ru")
        txn.response = None
        packets, book = packets_from_trace(Trace(transactions=[txn]))
        recovered = transactions_from_packets(packets, book=book)
        assert len(recovered) == 1
        assert recovered[0].response is None

    def test_headers_preserved(self):
        trace = Trace(transactions=[
            make_txn(referrer="http://google.com/q",
                     extra_req_headers={"X-Flash-Version": "11"}),
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert recovered[0].request.referrer == "http://google.com/q"
        assert recovered[0].request.headers.get("X-Flash-Version") == "11"

    def test_trace_from_packets_convenience(self):
        trace = Trace(transactions=[make_txn()])
        packets, book = packets_from_trace(trace)
        rebuilt = trace_from_packets(packets, book=book)
        assert len(rebuilt) == 1

    def test_payload_type_survives_roundtrip(self):
        trace = Trace(transactions=[
            make_txn(host="ek.pw", uri="/drop.jar",
                     content_type="application/java-archive",
                     body=b"PK\x03\x04fakejar"),
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert recovered[0].payload_type.value == "jar"


class TestSyntheticEpisodeRoundTrip:
    def test_infection_episode_roundtrip(self):
        rng = np.random.default_rng(3)
        generator = InfectionGenerator(family_by_name("RIG"), rng)
        trace = generator.generate()
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert len(recovered) == len(trace.transactions)
        assert {t.server for t in recovered} == {
            t.server for t in trace.transactions
        }

    def test_benign_episode_roundtrip(self):
        generator = BenignGenerator(np.random.default_rng(4))
        trace = generator.generate()
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert len(recovered) == len(trace.transactions)

    def test_timestamps_monotonic_per_connection(self):
        generator = BenignGenerator(np.random.default_rng(5))
        trace = generator.generate()
        packets, _ = packets_from_trace(trace)
        stamps = [p.timestamp for p in packets]
        assert stamps == sorted(stamps)
