"""End-to-end flow tests: trace -> packets -> transactions round trip."""

import numpy as np
import pytest

from repro.core.model import HttpMethod, Trace
from repro.net.flows import (
    AddressBook,
    packets_from_trace,
    trace_from_packets,
    transactions_from_packets,
)
from repro.synthesis.benign import BenignGenerator
from repro.synthesis.families import family_by_name
from repro.synthesis.infection import InfectionGenerator
from tests.conftest import make_txn


class TestAddressBook:
    def test_stable_mapping(self):
        book_a, book_b = AddressBook(), AddressBook()
        assert book_a.ip_of("example.com") == book_b.ip_of("example.com")

    def test_reverse_lookup(self):
        book = AddressBook()
        ip = book.ip_of("host.net")
        assert book.host_of(ip) == "host.net"

    def test_unknown_ip_passthrough(self):
        assert AddressBook().host_of("9.9.9.9") == "9.9.9.9"

    def test_distinct_hosts_distinct_ips(self):
        book = AddressBook()
        ips = {book.ip_of(f"host-{i}.com") for i in range(200)}
        assert len(ips) == 200


class TestRoundTrip:
    def test_single_transaction(self):
        trace = Trace(transactions=[
            make_txn(host="server.com", uri="/page",
                     body=b"<html>x</html>"),
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert len(recovered) == 1
        assert recovered[0].server == "server.com"
        assert recovered[0].request.uri == "/page"
        assert recovered[0].status == 200

    def test_multiple_hosts_multiple_connections(self):
        trace = Trace(transactions=[
            make_txn(host="a.com", ts=1.0),
            make_txn(host="b.com", ts=2.0),
            make_txn(host="a.com", uri="/2", ts=3.0),
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert len(recovered) == 3
        assert {t.server for t in recovered} == {"a.com", "b.com"}

    def test_persistent_connection_order(self):
        trace = Trace(transactions=[
            make_txn(host="a.com", uri=f"/{i}", ts=float(i))
            for i in range(1, 6)
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert [t.request.uri for t in recovered] == [
            "/1", "/2", "/3", "/4", "/5"
        ]

    def test_post_and_status_preserved(self):
        trace = Trace(transactions=[
            make_txn(host="cnc.xyz", uri="/gate.php", method=HttpMethod.POST,
                     status=404, body=b"nope"),
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert recovered[0].request.method is HttpMethod.POST
        assert recovered[0].status == 404

    def test_unanswered_request_survives(self):
        txn = make_txn(host="dead.ru")
        txn.response = None
        packets, book = packets_from_trace(Trace(transactions=[txn]))
        recovered = transactions_from_packets(packets, book=book)
        assert len(recovered) == 1
        assert recovered[0].response is None

    def test_headers_preserved(self):
        trace = Trace(transactions=[
            make_txn(referrer="http://google.com/q",
                     extra_req_headers={"X-Flash-Version": "11"}),
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert recovered[0].request.referrer == "http://google.com/q"
        assert recovered[0].request.headers.get("X-Flash-Version") == "11"

    def test_trace_from_packets_convenience(self):
        trace = Trace(transactions=[make_txn()])
        packets, book = packets_from_trace(trace)
        rebuilt = trace_from_packets(packets, book=book)
        assert len(rebuilt) == 1

    def test_payload_type_survives_roundtrip(self):
        trace = Trace(transactions=[
            make_txn(host="ek.pw", uri="/drop.jar",
                     content_type="application/java-archive",
                     body=b"PK\x03\x04fakejar"),
        ])
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert recovered[0].payload_type.value == "jar"


class TestSyntheticEpisodeRoundTrip:
    def test_infection_episode_roundtrip(self):
        rng = np.random.default_rng(3)
        generator = InfectionGenerator(family_by_name("RIG"), rng)
        trace = generator.generate()
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert len(recovered) == len(trace.transactions)
        assert {t.server for t in recovered} == {
            t.server for t in trace.transactions
        }

    def test_benign_episode_roundtrip(self):
        generator = BenignGenerator(np.random.default_rng(4))
        trace = generator.generate()
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        assert len(recovered) == len(trace.transactions)

    def test_timestamps_monotonic_per_connection(self):
        generator = BenignGenerator(np.random.default_rng(5))
        trace = generator.generate()
        packets, _ = packets_from_trace(trace)
        stamps = [p.timestamp for p in packets]
        assert stamps == sorted(stamps)


class TestOrphanResponseDraining:
    """Regression: every orphan in a batch is drained and counted —
    the pairer used to stop at the first one, silently discarding the
    rest and undercounting ``http.orphan_responses``."""

    @staticmethod
    def _orphan_capture(responses: int, with_request: bool = False):
        from repro.loadgen import RawConnection

        conn = RawConnection("172.31.0.1", 50000, "198.51.100.1")
        packets = conn.open(1.0)
        ts = 1.1
        if with_request:
            packets.extend(conn.send(
                ts, True, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"
            ))
            ts += 0.1
        body = b"unsolicited"
        wire = (b"HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s"
                % (len(body), body))
        for _ in range(responses):
            packets.extend(conn.send(ts, False, wire))
            ts += 0.1
        packets.extend(conn.close(ts))
        return packets

    def _decode_counting(self, packets):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            recovered = transactions_from_packets(packets)
        return recovered, registry.snapshot()["counters"]

    def test_every_orphan_counted(self):
        packets = self._orphan_capture(responses=3)
        recovered, counters = self._decode_counting(packets)
        assert recovered == []
        assert counters["http.orphan_responses"] == 3

    def test_orphans_after_paired_response(self):
        packets = self._orphan_capture(responses=3, with_request=True)
        recovered, counters = self._decode_counting(packets)
        assert len(recovered) == 1  # the request pairs with response #1
        assert recovered[0].status == 200
        assert counters["http.orphan_responses"] == 2
