"""Unit tests for the client-affinity router and the merge contract."""

from repro.core.payloads import PayloadType
from repro.detection.alerts import Alert
from repro.detection.clues import InfectionClue
from repro.loadgen import MIXED, LoadGenerator
from repro.loadgen.episodes import HostAllocator, RawConnection, _http_get
from repro.net.packets import decode_ethernet, decode_ipv4, decode_tcp
from repro.obs.registry import Histogram
from repro.net.pcap import PcapPacket
from repro.service import (
    PacketRouter,
    client_ip_of,
    merge_alerts,
    merge_snapshots,
    shard_of,
)
from repro.service.worker import ShardAlert


class TestClientHeuristic:
    def test_service_port_marks_server(self):
        assert client_ip_of("10.0.0.1", 49152, "198.51.0.1", 80) == "10.0.0.1"
        assert client_ip_of("198.51.0.1", 80, "10.0.0.1", 49152) == "10.0.0.1"
        assert client_ip_of("10.0.0.2", 50000, "9.9.9.9", 443) == "10.0.0.2"

    def test_direction_stable(self):
        forward = client_ip_of("10.0.0.1", 49152, "198.51.0.1", 80)
        reverse = client_ip_of("198.51.0.1", 80, "10.0.0.1", 49152)
        assert forward == reverse

    def test_ambiguous_falls_back_symmetrically(self):
        forward = client_ip_of("10.0.0.1", 5555, "10.0.0.2", 6666)
        reverse = client_ip_of("10.0.0.2", 6666, "10.0.0.1", 5555)
        assert forward == reverse

    def test_shard_of_deterministic_and_in_range(self):
        for n in (1, 2, 4, 7):
            for client in ("10.0.0.1", "172.31.0.5", "x"):
                shard = shard_of(client, n)
                assert 0 <= shard < n
                assert shard == shard_of(client, n)


class TestPacketRouter:
    def test_client_affinity_over_mixed_workload(self):
        """Every TCP packet of a given client lands on one shard, both
        directions included — the invariant the whole parity story
        rests on."""
        generator = LoadGenerator(seed=31, mix=MIXED, concurrency=6)
        packets = generator.capture(4000)
        router = PacketRouter(n_shards=4)
        seen: dict[str, set[int]] = {}
        for packet in packets:
            for shard, routed in router.route(packet):
                # Recover the client the router should have used.
                try:
                    ip = decode_ipv4(decode_ethernet(routed.data).payload)
                    if ip.is_fragment:
                        continue
                    segment = decode_tcp(ip.payload)
                except Exception:
                    continue
                client = client_ip_of(ip.src, segment.src_port,
                                      ip.dst, segment.dst_port)
                seen.setdefault(client, set()).add(shard)
        assert seen, "expected routable TCP traffic"
        for client, shards in seen.items():
            assert len(shards) == 1, f"client {client} split: {shards}"

    def test_all_packets_delivered_exactly_once(self):
        generator = LoadGenerator(seed=37, mix=MIXED, concurrency=6)
        packets = generator.capture(3000)
        router = PacketRouter(n_shards=3)
        delivered = 0
        for packet in packets:
            delivered += len(router.route(packet))
        held = sum(len(v) for v in router._held.values())
        assert delivered + held == len(packets)

    def test_garbage_routes_deterministically(self):
        router_a = PacketRouter(n_shards=4)
        router_b = PacketRouter(n_shards=4)
        junk = PcapPacket(1.0, b"\x00\x01garbage-frame")
        [(shard_a, _)] = router_a.route(junk)
        [(shard_b, _)] = router_b.route(junk)
        assert shard_a == shard_b

    def test_single_shard_routes_everything_to_zero(self):
        hosts = HostAllocator()
        ip, port = hosts.client()
        conn = RawConnection(ip, port, hosts.server())
        router = PacketRouter(n_shards=1)
        packets = conn.open(0.0) + conn.send(
            0.01, True, _http_get(conn.server_ip, "/", "a")
        )
        for packet in packets:
            for shard, _ in router.route(packet):
                assert shard == 0


def _alert(ts: float, client: str) -> Alert:
    clue = InfectionClue(client=client, server="evil.example",
                         payload_type=PayloadType.EXE, chain_length=3,
                         timestamp=ts)
    return Alert(client=client, score=0.9, clue=clue, timestamp=ts,
                 wcg_order=3, wcg_size=4, session_key=f"{client}#1")


class TestMergeAlerts:
    def test_orders_by_timestamp_then_shard_then_seq(self):
        a = ShardAlert(1, 0, _alert(5.0, "c1"))
        b = ShardAlert(0, 0, _alert(5.0, "c2"))
        c = ShardAlert(0, 1, _alert(1.0, "c3"))
        merged = merge_alerts([a, b, c])
        assert [alert.client for alert in merged] == ["c3", "c2", "c1"]

    def test_same_shard_ties_keep_emission_order(self):
        first = ShardAlert(2, 0, _alert(7.0, "x"))
        second = ShardAlert(2, 1, _alert(7.0, "y"))
        merged = merge_alerts([second, first])
        assert [alert.client for alert in merged] == ["x", "y"]


class TestMergeSnapshots:
    def test_counters_and_gauges_sum(self):
        merged = merge_snapshots([
            {"enabled": True, "counters": {"a": 2, "b": 1}, "gauges": {"g": 3},
             "histograms": {}},
            {"enabled": True, "counters": {"a": 5}, "gauges": {"g": 4},
             "histograms": {}},
        ])
        assert merged["enabled"] is True
        assert merged["shards"] == 2
        assert merged["counters"] == {"a": 7, "b": 1}
        assert merged["gauges"] == {"g": 7}

    def test_histograms_combine(self):
        h1 = {"count": 2, "sum": 10.0, "min": 1.0, "max": 9.0,
              "mean": 5.0, "p50": 5.0, "p90": 8.0, "p99": 9.0}
        h2 = {"count": 3, "sum": 6.0, "min": 0.5, "max": 4.0,
              "mean": 2.0, "p50": 2.0, "p90": 4.0, "p99": 4.0}
        merged = merge_snapshots([
            {"enabled": True, "counters": {}, "gauges": {},
             "histograms": {"lat": h1}},
            {"enabled": True, "counters": {}, "gauges": {},
             "histograms": {"lat": h2}},
        ])
        hist = merged["histograms"]["lat"]
        assert hist["count"] == 5
        assert hist["sum"] == 16.0
        assert hist["min"] == 0.5
        assert hist["max"] == 9.0
        assert hist["mean"] == 16.0 / 5
        assert hist["p99"] == 9.0  # conservative fleet tail

    def test_empty_histogram_does_not_poison_stats(self):
        # A shard that never observed a sample snapshots its histogram
        # with count=0 and None order statistics; the fleet merge must
        # keep the populated shard's stats (regression: TypeError when
        # min/max compared None against a float under REPRO_METRICS=1).
        empty = {"count": 0, "sum": 0.0, "min": None, "max": None,
                 "mean": None, "p50": None, "p90": None, "p99": None}
        full = {"count": 2, "sum": 10.0, "min": 1.0, "max": 9.0,
                "mean": 5.0, "p50": 5.0, "p90": 8.0, "p99": 9.0}
        for ordering in ([empty, full], [full, empty]):
            merged = merge_snapshots([
                {"enabled": True, "counters": {}, "gauges": {},
                 "histograms": {"lat": dict(h)}} for h in ordering
            ])
            hist = merged["histograms"]["lat"]
            assert hist["count"] == 2
            assert hist["min"] == 1.0
            assert hist["max"] == 9.0
            assert hist["p99"] == 9.0
            assert hist["mean"] == 5.0

    def test_exact_quantiles_from_sample_buffers(self):
        # When every contributing shard ships its retained samples, the
        # fleet quantiles are computed over the pooled buffer — exact,
        # not the conservative max-of estimate.
        h1 = Histogram("lat")
        h2 = Histogram("lat")
        for value in range(0, 50):
            h1.observe(float(value))
        for value in range(50, 100):
            h2.observe(float(value))
        merged = merge_snapshots([
            {"enabled": True, "counters": {}, "gauges": {},
             "histograms": {"lat": h1.snapshot()}},
            {"enabled": True, "counters": {}, "gauges": {},
             "histograms": {"lat": h2.snapshot()}},
        ])
        oracle = Histogram("lat")
        for value in range(100):
            oracle.observe(float(value))
        hist = merged["histograms"]["lat"]
        for stat, q in (("p50", 0.50), ("p90", 0.90), ("p99", 0.99)):
            assert hist[stat] == oracle.quantile(q)
        # Exact beats max-of: each shard's own p50 is far off 49.5.
        assert hist["p50"] == 49.5
        assert max(h1.snapshot()["p50"], h2.snapshot()["p50"]) != 49.5

    def test_merged_output_strips_samples(self):
        h = Histogram("lat")
        h.observe(1.0)
        merged = merge_snapshots([
            {"enabled": True, "counters": {}, "gauges": {},
             "histograms": {"lat": h.snapshot()}},
            {"enabled": True, "counters": {}, "gauges": {},
             "histograms": {"lat": h.snapshot()}},
        ])
        assert "samples" not in merged["histograms"]["lat"]

    def test_single_shard_histogram_also_recomputed_and_stripped(self):
        h = Histogram("lat")
        for value in (1.0, 2.0, 3.0):
            h.observe(value)
        merged = merge_snapshots([
            {"enabled": True, "counters": {}, "gauges": {},
             "histograms": {"lat": h.snapshot()}},
        ])
        hist = merged["histograms"]["lat"]
        assert "samples" not in hist
        assert hist["p50"] == 2.0

    def test_sampleless_contributor_falls_back_to_max_of(self):
        # Back-compat: a snapshot without a sample buffer poisons the
        # pool, and the quantiles stay on the conservative estimate.
        with_samples = {"count": 2, "sum": 3.0, "min": 1.0, "max": 2.0,
                        "mean": 1.5, "p50": 1.5, "p90": 1.9, "p99": 2.0,
                        "samples": [1.0, 2.0]}
        without = {"count": 2, "sum": 18.0, "min": 8.0, "max": 10.0,
                   "mean": 9.0, "p50": 9.0, "p90": 9.8, "p99": 10.0}
        merged = merge_snapshots([
            {"enabled": True, "counters": {}, "gauges": {},
             "histograms": {"lat": dict(with_samples)}},
            {"enabled": True, "counters": {}, "gauges": {},
             "histograms": {"lat": dict(without)}},
        ])
        hist = merged["histograms"]["lat"]
        assert hist["p50"] == 9.0  # max-of, not pooled-exact (≈5.5)
        assert "samples" not in hist

    def test_oversized_pool_decimates_deterministically(self):
        snapshots = []
        for shard in range(3):
            h = Histogram("lat")
            for value in range(2000):
                h.observe(float(shard * 2000 + value))
            snapshots.append(
                {"enabled": True, "counters": {}, "gauges": {},
                 "histograms": {"lat": h.snapshot()}}
            )
        first = merge_snapshots([dict(s) for s in snapshots])
        second = merge_snapshots([dict(s) for s in snapshots])
        hist = first["histograms"]["lat"]
        assert hist == second["histograms"]["lat"]  # deterministic
        assert hist["count"] == 6000
        # A sane approximation of the 0..5999 ramp despite decimation.
        assert abs(hist["p50"] - 2999.5) / 2999.5 < 0.1

    def test_disabled_snapshots_merge_to_disabled(self):
        merged = merge_snapshots([
            {"enabled": False, "counters": {}, "gauges": {},
             "histograms": {}},
        ])
        assert merged["enabled"] is False
        assert merged["counters"] == {}
