"""Sharded-vs-single differential: the fleet IS the detector.

The headline acceptance criterion for the sharded service: over the
same workload, the merged fleet alert stream must be **byte-identical**
to the single-process :class:`~repro.detection.live.LiveDetector` at
any worker count.  Alerts are frozen dataclasses, so ``==`` compares
every field — client, score, clue, timestamp, WCG dimensions, session
key.  Nothing is sorted before comparison on the fleet side beyond the
service's own deterministic merge; if the merge contract or the client
affinity ever regresses, these tests fail on the first divergent field.
"""

import pytest

from repro.detection.detector import OnTheWireDetector
from repro.detection.live import LiveDetector
from repro.loadgen import MIXED, LoadGenerator, WorkloadMix
from repro.service import EngineSpec, ShardedDetectionService, merge_alerts
from repro.service.worker import ShardAlert, run_shard
from repro.service.sharding import PacketRouter


def _canonical(alerts):
    """The single-process stream in fleet-canonical order.

    ``detector.alerts`` is in *emission* order: alerts raised during
    ``finalize()`` append at the end even when their timestamps are
    earlier (a watch can outlive the packet that armed it).  The fleet
    merge orders by ``(timestamp, shard_id, seq)``, so the reference
    stream must pass through the identical merge — as a single shard —
    before a positional comparison is meaningful.  The *set* of alerts
    is compared exactly either way.
    """
    return merge_alerts(
        ShardAlert(0, i, alert) for i, alert in enumerate(alerts)
    )

#: Enough MIXED traffic for several exploit-kit episodes to complete
#: (so the reference run actually alerts) while staying test-sized.
PACKETS = 6000


@pytest.fixture(scope="module")
def workload():
    """Pre-captured MIXED stream + its fully populated address book.

    Capturing up front matters: the book fills lazily as episodes are
    generated, and both pipelines must see the identical final book.
    """
    generator = LoadGenerator(seed=61, mix=MIXED, concurrency=6)
    packets = generator.capture(PACKETS)
    return packets, generator.book


@pytest.fixture(scope="module")
def reference(workload, trained_model):
    """Single-process alert stream over the workload."""
    packets, book = workload
    live = LiveDetector(OnTheWireDetector(trained_model), book=book)
    for packet in packets:
        live.feed(packet)
    live.finish()
    return live.detector.alerts, live.transactions_emitted


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_fleet_alerts_byte_identical(workload, reference, trained_model,
                                     workers):
    packets, book = workload
    ref_alerts, ref_transactions = reference
    spec = EngineSpec(classifier=trained_model, book=book)
    service = ShardedDetectionService(spec, workers=workers)
    with service:
        for packet in packets:
            service.feed(packet)
        fleet = service.drain()
    assert fleet.packets_routed == len(packets)
    assert fleet.transactions == ref_transactions
    # Frozen dataclasses: == compares every field of every alert.
    assert fleet.alerts == _canonical(ref_alerts)
    assert len(fleet.shards) == workers


def test_reference_workload_actually_alerts(reference):
    """Guard against a vacuous differential: the MIXED workload must
    produce a non-trivial alert stream for the parity to mean much."""
    ref_alerts, ref_transactions = reference
    assert len(ref_alerts) > 0
    assert ref_transactions > 0


def test_in_process_shards_also_match(workload, reference, trained_model):
    """Same differential without multiprocessing: route packets through
    the in-process :func:`run_shard` path (what the worker loop runs),
    isolating the parity property from queue/pickling effects."""
    packets, book = workload
    ref_alerts, _ = reference
    n_shards = 3
    router = PacketRouter(n_shards)
    per_shard = [[] for _ in range(n_shards)]
    for packet in packets:
        for shard, routed in router.route(packet):
            per_shard[shard].append(routed)
    spec = EngineSpec(classifier=trained_model, book=book)
    shard_alerts = []
    for shard_id, shard_packets in enumerate(per_shard):
        result = run_shard(spec, shard_id, shard_packets)
        assert result.error is None
        shard_alerts.extend(result.alerts)
    assert merge_alerts(shard_alerts) == _canonical(ref_alerts)


def test_hostile_noise_does_not_break_parity(trained_model):
    """Parity must survive traffic the router can only fallback-route:
    malformed frames, orphan responses, overflow holes."""
    mix = WorkloadMix(benign=0.3, exploit_kit=0.15, http_flood=0.1,
                      slow_drip=0.05, giant_pipelined=0.1,
                      retrans_storm=0.1, malformed_burst=0.1,
                      orphan_response=0.05, overflow=0.05)
    generator = LoadGenerator(seed=67, mix=mix, concurrency=6)
    packets = generator.capture(5000)
    book = generator.book
    live = LiveDetector(OnTheWireDetector(trained_model), book=book)
    for packet in packets:
        live.feed(packet)
    live.finish()
    spec = EngineSpec(classifier=trained_model, book=book)
    service = ShardedDetectionService(spec, workers=2)
    with service:
        for packet in packets:
            service.feed(packet)
        fleet = service.drain()
    assert fleet.alerts == _canonical(live.detector.alerts)
