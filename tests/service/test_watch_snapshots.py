"""Per-shard watch snapshots: fleet state equals single-process state.

The shard snapshot (DESIGN.md §14) is assembled from WCG column slices,
and :class:`~repro.detection.live.WatchSnapshot` is a frozen value
object — so the differential here is plain ``==``: the merged fleet
list must equal the single engine's list field for field, at any shard
count.
"""

import numpy as np

from repro.detection.detector import OnTheWireDetector
from repro.detection.live import DetectionEngine
from repro.loadgen import MIXED, LoadGenerator
from repro.service.daemon import merge_watch_snapshots
from repro.service.sharding import PacketRouter
from repro.service.worker import EngineSpec, run_shard

PACKETS = 4000


def _workload():
    generator = LoadGenerator(seed=79, mix=MIXED, concurrency=6)
    packets = generator.capture(PACKETS)
    return packets, generator.book


def _reference_snapshots(trained_model, packets, book):
    engine = DetectionEngine(OnTheWireDetector(trained_model), book=book)
    for packet in packets:
        engine.feed(packet)
    return engine.snapshot_watches()


def test_sharded_snapshots_match_single_engine(trained_model):
    packets, book = _workload()
    reference = _reference_snapshots(trained_model, packets, book)
    assert reference, "vacuous differential: no live watches to snapshot"

    n_shards = 3
    router = PacketRouter(n_shards)
    per_shard = [[] for _ in range(n_shards)]
    for packet in packets:
        for shard, routed in router.route(packet):
            per_shard[shard].append(routed)
    spec = EngineSpec(classifier=trained_model, book=book,
                      snapshot_watches=True)
    shard_watches = []
    for shard_id, shard_packets in enumerate(per_shard):
        result = run_shard(spec, shard_id, shard_packets)
        assert result.error is None
        shard_watches.append(result.watches)

    assert merge_watch_snapshots(shard_watches) == reference


def test_snapshots_off_by_default(trained_model):
    packets, book = _workload()
    spec = EngineSpec(classifier=trained_model, book=book)
    result = run_shard(spec, 0, packets[:500])
    assert result.error is None
    assert result.watches == []


def test_snapshot_fields_agree_with_column_slices(trained_model):
    """Snapshot numbers must equal direct reductions over the columns."""
    packets, book = _workload()
    engine = DetectionEngine(OnTheWireDetector(trained_model), book=book)
    for packet in packets:
        engine.feed(packet)
    snapshots = engine.snapshot_watches()
    assert snapshots
    by_key = {watch.key: watch for watch in engine.detector.active_watches()}
    for snap in snapshots:
        wcg = by_key[snap.key].wcg()
        store = wcg.edge_store
        assert snap.size == len(store)
        assert sum(snap.stage_counts) == len(store)
        timestamps = store.column("timestamp")
        assert snap.first_edge_ts == float(timestamps.min())
        assert snap.last_edge_ts == float(timestamps.max())
        stages = store.column("stage")
        assert snap.stage_counts == tuple(
            int(np.sum(stages == stage)) for stage in (0, 1, 2)
        )
