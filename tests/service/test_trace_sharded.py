"""Sharded-vs-single trace differential: the fleet trace IS the trace.

The merge contract extends to tracing (DESIGN.md §16): over the same
workload, the merged fleet trace stream in canonical form (wall-clock
fields stripped) must be byte-identical to the single-process traced
run at any worker count, and every fleet alert must carry the identical
provenance record.  The reference stream passes through the same
``(timestamp, shard_id, seq)`` merge — as a single shard — before the
positional comparison, mirroring the alert differential.
"""

import pytest

from repro.detection.detector import OnTheWireDetector
from repro.detection.live import LiveDetector
from repro.loadgen import MIXED, LoadGenerator
from repro.obs import Tracer, canonical_events, use_tracer
from repro.service import EngineSpec, ShardedDetectionService, merge_alerts
from repro.service.daemon import merge_traces
from repro.service.sharding import PacketRouter
from repro.service.worker import ShardAlert, run_shard

PACKETS = 6000


def _canonical_alerts(alerts):
    return merge_alerts(
        ShardAlert(0, i, alert) for i, alert in enumerate(alerts)
    )


@pytest.fixture(scope="module")
def workload():
    generator = LoadGenerator(seed=61, mix=MIXED, concurrency=6)
    packets = generator.capture(PACKETS)
    return packets, generator.book


@pytest.fixture(scope="module")
def reference(workload, trained_model):
    """Single-process traced run: alerts + canonical trace stream."""
    packets, book = workload
    with use_tracer(Tracer()) as tracer:
        live = LiveDetector(OnTheWireDetector(trained_model), book=book)
        for packet in packets:
            live.feed(packet)
        live.finish()
        trace = merge_traces([(0, tracer.drain())])
    return live.detector.alerts, canonical_events(trace)


def test_reference_actually_alerts_with_provenance(reference):
    """Guard against a vacuous differential."""
    ref_alerts, ref_trace = reference
    assert len(ref_alerts) > 0
    assert all(a.provenance is not None for a in ref_alerts)
    assert len(ref_trace) > len(ref_alerts)


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_in_process_shards_trace_byte_identical(
    workload, reference, trained_model, shards
):
    """Route through the in-process shard path at several worker
    counts; the merged canonical trace and the provenance-bearing
    alerts must match the single-process reference exactly."""
    packets, book = workload
    ref_alerts, ref_trace = reference
    router = PacketRouter(shards)
    per_shard = [[] for _ in range(shards)]
    for packet in packets:
        for shard, routed in router.route(packet):
            per_shard[shard].append(routed)
    spec = EngineSpec(classifier=trained_model, book=book, trace=True)
    shard_alerts, shard_traces = [], []
    for shard_id, shard_packets in enumerate(per_shard):
        result = run_shard(spec, shard_id, shard_packets)
        assert result.error is None
        shard_alerts.extend(result.alerts)
        shard_traces.append((shard_id, result.trace))
    fleet_alerts = merge_alerts(shard_alerts)
    # Frozen dataclasses: == compares every field, provenance included.
    assert fleet_alerts == _canonical_alerts(ref_alerts)
    assert canonical_events(merge_traces(shard_traces)) == ref_trace


def test_pooled_workers_trace_byte_identical(
    workload, reference, trained_model
):
    """The same differential through real worker processes: trace
    events must survive the queue crossing and merge identically."""
    packets, book = workload
    ref_alerts, ref_trace = reference
    spec = EngineSpec(classifier=trained_model, book=book, trace=True)
    service = ShardedDetectionService(spec, workers=2)
    with service:
        for packet in packets:
            service.feed(packet)
        fleet = service.drain()
    assert fleet.alerts == _canonical_alerts(ref_alerts)
    assert canonical_events(fleet.trace) == ref_trace


def test_trace_off_spec_ships_no_events(workload, trained_model):
    packets, book = workload
    spec = EngineSpec(classifier=trained_model, book=book, trace=False)
    result = run_shard(spec, 0, packets)
    assert result.error is None
    assert result.trace == []
    assert all(sa.alert.provenance is None for sa in result.alerts)


def test_alerts_sampling_rides_the_spec(workload, trained_model):
    """``trace_sample="alerts"`` in the spec reaches the shard tracer:
    only alerting timelines (and global events) come back."""
    packets, book = workload
    spec = EngineSpec(classifier=trained_model, book=book, trace=True,
                      trace_sample="alerts")
    result = run_shard(spec, 0, packets)
    assert result.error is None
    assert result.trace  # the workload alerts, so timelines survive
    full = run_shard(
        EngineSpec(classifier=trained_model, book=book, trace=True),
        0, packets,
    )
    assert len(result.trace) < len(full.trace)
