"""Unit tests for the simulated AV engines."""

import pytest

from repro.vtsim.engines import (
    DAY,
    AvEngine,
    PayloadSample,
    build_engine_fleet,
)


@pytest.fixture(scope="module")
def fleet():
    return build_engine_fleet()


def _sample(**kwargs):
    defaults = dict(sha256="deadbeef", malicious=True, first_seen=1e9)
    defaults.update(kwargs)
    return PayloadSample(**defaults)


class TestFleet:
    def test_fifty_six_engines(self, fleet):
        assert len(fleet) == 56

    def test_unique_names(self, fleet):
        assert len({e.name for e in fleet}) == 56

    def test_some_content_capable(self, fleet):
        capable = [e for e in fleet if e.content_capable]
        assert 3 <= len(capable) <= 10

    def test_quality_variation(self, fleet):
        lags = {e.mean_lag_days for e in fleet}
        assert len(lags) > 10  # engines differ


class TestDetectionTime:
    def test_deterministic(self, fleet):
        engine = fleet[0]
        sample = _sample()
        assert engine.detection_time(sample) == engine.detection_time(sample)

    def test_monotone_in_time(self, fleet):
        sample = _sample()
        for engine in fleet:
            when = engine.detection_time(sample)
            if when is None:
                continue
            assert not engine.detects(sample, when - 1.0)
            assert engine.detects(sample, when + 1.0)

    def test_old_sample_widely_detected(self, fleet):
        sample = _sample(first_seen=1e9 - 60 * DAY)
        detectors = sum(1 for e in fleet if e.detects(sample, 1e9))
        assert detectors > 20

    def test_fresh_sample_clean_at_first_scan(self, fleet):
        sample = _sample(fresh=True, first_seen=1e9)
        detectors = sum(1 for e in fleet if e.detects(sample, 1e9 + 3600))
        assert detectors == 0  # min lag is 0.25 day for fresh samples

    def test_fresh_sample_detected_later(self, fleet):
        sample = _sample(fresh=True, first_seen=1e9)
        detectors = sum(
            1 for e in fleet if e.detects(sample, 1e9 + 60 * DAY)
        )
        assert detectors > 20

    def test_content_borne_gated_to_capable_engines(self, fleet):
        sample = _sample(content_borne=True, first_seen=1e9)
        late = 1e9 + 30 * DAY
        for engine in fleet:
            if not engine.content_capable:
                assert not engine.detects(sample, late)

    def test_content_borne_lag_window(self, fleet):
        sample = _sample(content_borne=True, first_seen=1e9)
        capable = [e for e in fleet if e.content_capable]
        at_day_2 = sum(1 for e in capable if e.detects(sample, 1e9 + 2 * DAY))
        at_day_14 = sum(
            1 for e in capable if e.detects(sample, 1e9 + 14 * DAY)
        )
        assert at_day_2 == 0   # uniform(5, 11)-day lag
        assert at_day_14 >= 3  # paper's resubmission story

    def test_benign_sample_rarely_flagged(self, fleet):
        flags = 0
        for index in range(30):
            sample = _sample(sha256=f"benign-{index}", malicious=False)
            flags += sum(1 for e in fleet if e.detects(sample, 1e9))
        # ~0.012 * 56 * 30 = ~20 expected individual engine FPs
        assert flags < 60

    def test_suspicious_benign_flagged_more(self, fleet):
        normal_flags = suspicious_flags = 0
        for index in range(30):
            normal = _sample(sha256=f"n-{index}", malicious=False)
            suspicious = _sample(sha256=f"s-{index}", malicious=False,
                                 reputation="suspicious")
            normal_flags += sum(1 for e in fleet if e.detects(normal, 1e9))
            suspicious_flags += sum(
                1 for e in fleet if e.detects(suspicious, 1e9)
            )
        assert suspicious_flags > normal_flags
