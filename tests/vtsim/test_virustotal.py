"""Unit tests for the VirusTotal aggregator simulation."""

import pytest

from repro.vtsim.engines import DAY, PayloadSample
from repro.vtsim.virustotal import VirusTotalSim, samples_from_trace


class TestScan:
    def test_result_shape(self):
        vt = VirusTotalSim(timeout_rate=0.0)
        sample = PayloadSample(sha256="abc", malicious=True,
                               first_seen=1e9 - 30 * DAY)
        result = vt.scan(sample, 1e9)
        assert result.total == 56
        assert 0 <= result.positives <= 56
        assert not result.timed_out
        assert len(result.engines) == result.positives

    def test_flagged_threshold(self):
        vt = VirusTotalSim(timeout_rate=0.0)
        old = PayloadSample(sha256="old", malicious=True,
                            first_seen=1e9 - 60 * DAY)
        result = vt.scan(old, 1e9)
        assert result.flagged(3)
        assert not result.flagged(result.positives + 1)

    def test_timeouts_counted(self):
        vt = VirusTotalSim(timeout_rate=1.0)
        sample = PayloadSample(sha256="x", malicious=True)
        result = vt.scan(sample, 0.0)
        assert result.timed_out
        assert not result.flagged()
        assert vt.timeouts == 1

    def test_timeout_rate_statistical(self):
        vt = VirusTotalSim(timeout_rate=0.1)
        for index in range(300):
            vt.scan(PayloadSample(sha256=f"s{index}", malicious=False), 0.0)
        assert 10 <= vt.timeouts <= 60

    def test_submissions_counter(self):
        vt = VirusTotalSim()
        vt.scan(PayloadSample(sha256="a", malicious=False), 0.0)
        vt.scan(PayloadSample(sha256="b", malicious=False), 0.0)
        assert vt.submissions == 2


class TestScanTrace:
    def test_infection_trace_flagged(self, tiny_corpus):
        vt = VirusTotalSim(timeout_rate=0.0)
        flagged = sum(
            1 for t in tiny_corpus.infections if vt.scan_trace(t).flagged()
        )
        # Most, but per Table V not all, infections are caught.
        assert flagged / len(tiny_corpus.infections) > 0.6

    def test_benign_mostly_clean(self, tiny_corpus):
        vt = VirusTotalSim(timeout_rate=0.0)
        flagged = sum(
            1 for t in tiny_corpus.benign if vt.scan_trace(t).flagged()
        )
        assert flagged / len(tiny_corpus.benign) < 0.25

    def test_empty_trace(self):
        from repro.core.model import Trace

        vt = VirusTotalSim()
        result = vt.scan_trace(Trace(transactions=[]), at_time=0.0)
        assert result.positives == 0
        assert not result.flagged()

    def test_detection_improves_with_time(self, tiny_corpus):
        vt = VirusTotalSim(timeout_rate=0.0)
        missed_now = [
            t for t in tiny_corpus.infections
            if not vt.scan_trace(t).flagged()
        ]
        if not missed_now:
            pytest.skip("no initially-missed infections in tiny corpus")
        recovered = 0
        for trace in missed_now:
            later = trace.transactions[-1].timestamp + 45 * DAY
            if vt.scan_trace(trace, at_time=later).flagged():
                recovered += 1
        assert recovered >= 1  # AV lag closes over time


class TestSamplesFromTrace:
    def test_infection_samples_marked(self, tiny_corpus):
        infection = next(
            t for t in tiny_corpus.infections if not t.meta.get("stealth")
        )
        samples = samples_from_trace(infection)
        assert samples
        assert any(s.malicious for s in samples)

    def test_benign_samples_not_malicious(self, tiny_corpus):
        benign = tiny_corpus.benign[0]
        samples = samples_from_trace(benign)
        assert all(not s.malicious for s in samples)

    def test_stealth_zip_counts_as_payload(self, tiny_corpus):
        stealth = [t for t in tiny_corpus.infections
                   if t.meta.get("stealth")]
        if not stealth:
            pytest.skip("no stealth episodes at this scale")
        samples = samples_from_trace(stealth[0])
        assert any(s.malicious for s in samples)

    def test_suspicious_reputation_for_hard_benign(self, tiny_corpus):
        hard = [t for t in tiny_corpus.benign
                if t.meta.get("scenario") in ("unofficial_download",
                                              "torrent")]
        if not hard:
            pytest.skip("no hard benign at this scale")
        samples = samples_from_trace(hard[0])
        assert any(s.reputation == "suspicious" for s in samples)
