"""Unit tests for graph-property analytics and report rendering."""

import numpy as np
import pytest

from repro.analytics.graphprops import (
    FIG3_PROPERTIES,
    average_graph_properties,
    class_feature_matrix,
    feature_distribution,
)
from repro.analytics.report import format_distribution, format_table


class TestAverageGraphProperties:
    def test_shape(self, tiny_corpus):
        data = average_graph_properties(tiny_corpus.traces)
        assert set(data) == set(FIG3_PROPERTIES)
        for values in data.values():
            assert set(values) == {"infection", "benign"}

    def test_fig3_contrasts(self, tiny_corpus):
        # Paper (Section II-C): infections have higher order/diameter;
        # lower degree-/closeness-/betweenness-centrality; higher load
        # centrality and degree-connectivity.
        data = average_graph_properties(tiny_corpus.traces)
        assert data["order"]["infection"] > data["order"]["benign"]
        assert data["diameter"]["infection"] > data["diameter"]["benign"]
        assert data["avg_closeness_centrality"]["infection"] < \
            data["avg_closeness_centrality"]["benign"]
        assert data["avg_load_centrality"]["infection"] > \
            data["avg_load_centrality"]["benign"]
        assert data["avg_degree_connectivity"]["infection"] > \
            data["avg_degree_connectivity"]["benign"]


class TestFeatureDistribution:
    def test_histogram_shape(self, tiny_corpus):
        hist = feature_distribution(tiny_corpus.traces,
                                    "avg_closeness_centrality", bins=10)
        inf_counts, edges = hist["infection"]
        ben_counts, _ = hist["benign"]
        assert len(inf_counts) == 10
        assert len(edges) == 11
        assert inf_counts.sum() == len(tiny_corpus.infections)
        assert ben_counts.sum() == len(tiny_corpus.benign)

    def test_classes_separate_on_closeness(self, tiny_corpus):
        # Figure 9's visual: infection mass sits at lower closeness.
        X, y, names = class_feature_matrix(tiny_corpus.traces)
        column = X[:, names.index("avg_closeness_centrality")]
        assert column[y == 1].mean() < column[y == 0].mean()


class TestReportRendering:
    def test_format_table_alignment(self):
        text = format_table(
            ["Name", "Value"],
            [["alpha", 1.5], ["b", 22]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "Name" in lines[1] and "Value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        assert len(lines) == 5

    def test_format_table_float_rendering(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_format_distribution_bars(self):
        text = format_distribution(["a", "b"], [1.0, 0.5], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_format_distribution_zero_values(self):
        text = format_distribution(["a"], [0.0])
        assert "a" in text
