"""Smoke coverage for every experiment report at a tiny scale.

Each ``report()`` must render without raising and contain its artifact's
identifying header — catching formatting regressions across the whole
experiment registry in one sweep.
"""

import pytest

from repro.cli import EXPERIMENTS

SEED = 7
SCALE = 0.08

#: Experiment id -> substring its report must contain.
_EXPECTED_HEADER = {
    "table1": "Table I",
    "fig1": "Fig. 1",
    "fig2": "Fig. 2",
    "fig3": "Fig. 3",
    "fig4": "Fig. 4",
    "table3": "Table III",
    "table4": "Table IV",
    "fig10": "Fig. 10",
    "table5": "Table V",
    "cs1": "Case Study 1",
    "table6": "Table VI",
    "evasion": "Section VII",
    "baselines": "Section VIII",
    "families": "leave-one-family-out",
    "ablation-voting": "Ablation",
    "ablation-forest": "Ablation",
}

_FAST = ("table1", "fig1", "fig2", "fig3", "fig4")


@pytest.mark.parametrize("experiment", sorted(_FAST))
def test_fast_reports_render(experiment):
    text = EXPERIMENTS[experiment](SEED, SCALE)
    assert _EXPECTED_HEADER[experiment] in text
    assert len(text.splitlines()) >= 3


def test_registry_headers_complete():
    assert set(_EXPECTED_HEADER) == set(EXPERIMENTS)
