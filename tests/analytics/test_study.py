"""Unit tests for the Section II study computations."""

import pytest

from repro.analytics.study import (
    callback_prevalence,
    global_properties,
    table1_rows,
)


class TestTable1Rows:
    def test_benign_row_first(self, tiny_corpus):
        rows = table1_rows(tiny_corpus)
        assert rows[0].family == "Benign"

    def test_all_families_present(self, tiny_corpus):
        rows = table1_rows(tiny_corpus)
        families = {row.family for row in rows}
        assert "Angler" in families
        assert "Goon" in families
        assert len(rows) == 11  # benign + 10 families

    def test_trace_counts_sum(self, tiny_corpus):
        rows = table1_rows(tiny_corpus)
        assert sum(row.n_traces for row in rows) == len(tiny_corpus)

    def test_host_min_at_least_two(self, tiny_corpus):
        for row in table1_rows(tiny_corpus):
            assert row.hosts_min >= 2

    def test_host_bounds_consistent(self, tiny_corpus):
        for row in table1_rows(tiny_corpus):
            assert row.hosts_min <= row.hosts_avg <= row.hosts_max
            assert row.redirects_min <= row.redirects_avg <= \
                row.redirects_max

    def test_benign_has_fewer_redirects_than_infections(self, tiny_corpus):
        rows = table1_rows(tiny_corpus)
        benign = rows[0]
        infection_avg = sum(
            r.redirects_avg * r.n_traces for r in rows[1:]
        ) / sum(r.n_traces for r in rows[1:])
        assert benign.redirects_avg < infection_avg

    def test_crypt_only_in_infection_rows(self, tiny_corpus):
        rows = table1_rows(tiny_corpus)
        assert rows[0].payload_counts.get("crypt", 0) == 0

    def test_as_list_shape(self, tiny_corpus):
        row = table1_rows(tiny_corpus)[0]
        cells = row.as_list()
        assert len(cells) == 14  # family + 7 stats + 6 payload columns
        assert cells[0] == "Benign"


class TestGlobalProperties:
    def test_ranges(self, tiny_corpus):
        props = global_properties(tiny_corpus.infections)
        assert props.nodes_min >= 2
        assert props.nodes_min <= props.nodes_avg <= props.nodes_max
        assert props.edges_min <= props.edges_avg <= props.edges_max
        assert props.lifetime_min <= props.lifetime_avg <= \
            props.lifetime_max

    def test_lifetime_in_paper_band(self, tiny_corpus):
        # Section III-D: 0.5 to 4061 seconds.
        props = global_properties(tiny_corpus.infections)
        assert props.lifetime_min >= 0.4
        assert props.lifetime_max <= 4061.0


class TestCallbackPrevalence:
    def test_infections_mostly_call_back(self, tiny_corpus):
        rate = callback_prevalence(tiny_corpus.infections)
        # Paper: 708/770 = 91.9%
        assert 0.75 <= rate <= 1.0

    def test_benign_rarely_post_download(self, tiny_corpus):
        rate = callback_prevalence(tiny_corpus.benign)
        assert rate < 0.35

    def test_empty(self):
        assert callback_prevalence([]) == 0.0
