"""Unit tests for the exposure (Fig 1/2) and header (Fig 4) analytics."""

import pytest

from repro.analytics.exposure import (
    EXPOSURE_CATEGORIES,
    classify_origin,
    exposure_distribution,
    per_family_exposure,
)
from repro.analytics.headers import (
    FIG4_ELEMENTS,
    average_header_elements,
    header_element_counts,
)
from repro.core.model import Trace, TraceLabel
from tests.conftest import make_txn


class TestClassifyOrigin:
    def _trace(self, origin, meta=None, uri="/x"):
        return Trace(
            transactions=[make_txn(uri=uri)],
            label=TraceLabel.INFECTION,
            origin=origin,
            meta=meta or {},
        )

    def test_google(self):
        assert classify_origin(self._trace("google.com")) == "google"

    def test_bing(self):
        assert classify_origin(self._trace("bing.com")) == "bing"

    def test_empty(self):
        assert classify_origin(self._trace("")) == "empty"

    def test_redacted_via_meta(self):
        trace = self._trace("", meta={"enticement": "redacted"})
        assert classify_origin(trace) == "redacted"

    def test_social(self):
        assert classify_origin(self._trace("facebook.com")) == "social"

    def test_compromised_via_cms_uri(self):
        trace = Trace(
            transactions=[make_txn(host="smallbiz.com",
                                   uri="/wp-content/uploads/2016/1/v.php")],
            label=TraceLabel.INFECTION,
            origin="smallbiz.com",
        )
        assert classify_origin(trace) == "compromised"

    def test_legitimate_fallback(self):
        assert classify_origin(self._trace("randomblog.com")) == "legitimate"


class TestExposureDistribution:
    def test_sums_to_one(self, tiny_corpus):
        dist = exposure_distribution(tiny_corpus.infections)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_search_dominates(self, tiny_corpus):
        # Figure 1: search engines drive 62% of exposure.
        dist = exposure_distribution(tiny_corpus.infections)
        assert dist["google"] + dist["bing"] > 0.4

    def test_benign_ignored(self, tiny_corpus):
        dist_all = exposure_distribution(tiny_corpus.traces)
        dist_inf = exposure_distribution(tiny_corpus.infections)
        assert dist_all == dist_inf

    def test_empty_input(self):
        dist = exposure_distribution([])
        assert all(v == 0.0 for v in dist.values())
        assert set(dist) == set(EXPOSURE_CATEGORIES)

    def test_per_family(self, tiny_corpus):
        per_family = per_family_exposure(tiny_corpus)
        assert set(per_family) == set(tiny_corpus.families)
        for dist in per_family.values():
            assert sum(dist.values()) == pytest.approx(1.0)


class TestHeaderElements:
    def test_counts_for_single_trace(self, simple_trace):
        counts = header_element_counts(simple_trace)
        assert counts["get"] == 4
        assert counts["post"] == 0
        assert counts["http_30x"] == 1
        assert counts["redirect_chains"] == 1
        assert counts["with_referrer"] == 4

    def test_keys_match_fig4(self, simple_trace):
        assert set(header_element_counts(simple_trace)) == set(FIG4_ELEMENTS)

    def test_average_shape(self, tiny_corpus):
        averages = average_header_elements(tiny_corpus.traces)
        assert set(averages) == set(FIG4_ELEMENTS)
        for element in FIG4_ELEMENTS:
            assert set(averages[element]) == {"infection", "benign"}

    def test_fig4_contrasts(self, tiny_corpus):
        # Paper: infections have visibly more GETs/POSTs/redirects/40x.
        averages = average_header_elements(tiny_corpus.traces)
        assert averages["post"]["infection"] > averages["post"]["benign"]
        assert averages["http_40x"]["infection"] > \
            averages["http_40x"]["benign"]
        assert averages["redirect_chains"]["infection"] > \
            averages["redirect_chains"]["benign"]


class TestCmsBreakdown:
    def test_wordpress_dominates(self, small_corpus):
        # Section II-B: 56 of 94 compromised-site enticements matched
        # default WordPress installation URI patterns.
        from repro.analytics.exposure import cms_breakdown

        counts = cms_breakdown(small_corpus.infections)
        total = sum(counts.values())
        if total < 10:
            import pytest
            pytest.skip("too few compromised enticements at this scale")
        assert counts["wordpress"] == max(counts.values())
        assert counts["wordpress"] / total > 0.4

    def test_benign_contribute_nothing(self, small_corpus):
        from repro.analytics.exposure import cms_breakdown

        assert sum(cms_breakdown(small_corpus.benign).values()) == 0
