"""Cross-module integration tests: the full pipeline end to end."""

import numpy as np
import pytest

import repro
from repro.core.builder import build_wcg
from repro.detection.detector import OnTheWireDetector
from repro.detection.proxy import TrafficReplay
from repro.features.extractor import FeatureExtractor, extract_matrix
from repro.learning.forest import EnsembleRandomForest
from repro.learning.metrics import evaluate_scores
from repro.net.flows import packets_from_trace, transactions_from_packets
from repro.net.pcap import read_pcap, write_pcap
from repro.synthesis.corpus import ground_truth_corpus


class TestOfflinePipeline:
    """Stage 1: corpus -> WCGs -> features -> trained classifier."""

    def test_train_and_classify(self, small_corpus, small_dataset,
                                trained_model):
        X, y = small_dataset
        scores = trained_model.decision_scores(X)
        metrics = evaluate_scores(y, scores)
        # Training-set fit on the ground truth: near-perfect.
        assert metrics["tpr"] > 0.95
        assert metrics["fpr"] < 0.05

    def test_holdout_generalization(self):
        train = ground_truth_corpus(seed=101, scale=0.12)
        test = ground_truth_corpus(seed=202, scale=0.06)
        X_train, y_train = extract_matrix(train.traces)
        X_test, y_test = extract_matrix(test.traces)
        model = EnsembleRandomForest(n_trees=20, random_state=0)
        model.fit(X_train, y_train)
        metrics = evaluate_scores(y_test, model.decision_scores(X_test))
        # The paper's headline: ~0.97 TPR at ~0.015 FPR (small held-out
        # draws fluctuate a few points around it).
        assert metrics["tpr"] > 0.85
        assert metrics["fpr"] < 0.08
        assert metrics["roc_area"] > 0.95


class TestWirePipeline:
    """Bytes-on-the-wire: trace -> pcap file -> packets -> WCG -> verdict."""

    def test_pcap_file_roundtrip_to_detection(self, tmp_path, small_corpus,
                                              trained_model):
        infection = next(
            t for t in small_corpus.infections if not t.meta.get("stealth")
        )
        packets, book = packets_from_trace(infection)
        path = str(tmp_path / "infection.pcap")
        write_pcap(path, packets)

        linktype, loaded = read_pcap(path)
        transactions = transactions_from_packets(loaded, linktype, book)
        assert len(transactions) == len(infection.transactions)

        detector = OnTheWireDetector(trained_model)
        report = TrafficReplay(detector).run(transactions)
        assert report.alert_count >= 1

    def test_wcg_equivalence_across_the_wire(self, small_corpus):
        trace = small_corpus.infections[0]
        direct = build_wcg(trace)
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        rebuilt = build_wcg(recovered, victim=direct.victim)
        assert rebuilt.order == direct.order
        assert set(rebuilt.hosts()) == set(direct.hosts())

    def test_features_stable_across_the_wire(self, small_corpus):
        trace = small_corpus.infections[0]
        extractor = FeatureExtractor()
        direct = extractor.extract(build_wcg(trace))
        packets, book = packets_from_trace(trace)
        recovered = transactions_from_packets(packets, book=book)
        rebuilt = extractor.extract(
            build_wcg(recovered, victim=trace.transactions[0].client)
        )
        # Structural features must match exactly; temporal ones may
        # shift by the sub-millisecond serialization offsets.
        names = repro.features.feature_names() if hasattr(
            repro, "features") else None
        from repro.features.registry import feature_names
        names = feature_names()
        for index, name in enumerate(names):
            if name in ("duration", "avg_inter_transaction_time"):
                assert rebuilt[index] == pytest.approx(direct[index],
                                                       rel=0.1, abs=0.5)
            elif name in ("order", "size", "gets", "posts", "http_20x",
                          "conversation_length"):
                assert rebuilt[index] == direct[index], name


class TestQuickDetector:
    def test_quickstart_api(self):
        detector, corpus = repro.quick_detector(seed=3, scale=0.05)
        assert detector.classifier.trees_
        assert len(corpus) > 0

    def test_quickstart_detects(self):
        detector, corpus = repro.quick_detector(seed=3, scale=0.08)
        infection = next(
            t for t in corpus.infections if not t.meta.get("stealth")
        )
        alerts = detector.process_stream(infection.transactions)
        detector.finalize()
        assert detector.alerts or alerts
