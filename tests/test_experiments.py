"""Integration tests for the experiment runners (reduced scale).

These assert the *shape* contract of each paper artifact — who wins, by
roughly what factor — on a small corpus so the suite stays fast.  The
full-scale regeneration lives in ``benchmarks/``.
"""

import pytest

from repro.experiments import (
    ablations,
    case_study1,
    evasion,
    fig10,
    figures,
    table1,
    table3,
    table4,
    table5,
    table6,
)
from repro.features.registry import FeatureGroup, spec_by_name

SEED = 7
SCALE = 0.12


@pytest.fixture(scope="module", autouse=True)
def _warm_cache():
    """Pre-build the shared corpus/features once for this module."""
    from repro.experiments.context import cached_features
    cached_features(SEED, SCALE)


class TestTable1:
    def test_rows_and_globals(self):
        results = table1.run(SEED, SCALE)
        assert len(results["rows"]) == 11
        assert results["callback_prevalence"] > 0.8
        assert results["global"].nodes_min >= 2

    def test_report_renders(self):
        text = table1.report(SEED, SCALE)
        assert "Table I" in text
        assert "Angler" in text


class TestFigures:
    def test_fig1_distribution(self):
        dist = figures.run_fig1(SEED, SCALE)
        assert sum(dist.values()) == pytest.approx(1.0)
        assert dist["google"] > dist["bing"] * 0.7

    def test_fig2_per_family(self):
        per_family = figures.run_fig2(SEED, SCALE)
        assert len(per_family) == 10

    def test_fig3_contrast(self):
        data = figures.run_fig3(SEED, SCALE)
        assert data["order"]["infection"] > data["order"]["benign"]

    def test_fig4_contrast(self):
        data = figures.run_fig4(SEED, SCALE)
        assert data["post"]["infection"] > data["post"]["benign"]

    def test_fig789_histograms(self):
        data = figures.run_fig7_8_9(SEED, SCALE)
        assert set(data) == set(figures.FIG789_FEATURES)

    def test_reports_render(self):
        assert "Fig. 1" in figures.report_fig1(SEED, SCALE)
        assert "Fig. 3" in figures.report_fig3(SEED, SCALE)
        assert "Fig. 4" in figures.report_fig4(SEED, SCALE)


class TestTable3:
    def test_ablation_ordering(self):
        results = table3.run(SEED, SCALE, k=5)
        assert set(results) == {"All", "GFs", "HLFs+HFs+TFs"}
        # The paper's headline ordering: all features beat either subset
        # on F-score (at this reduced test scale, allow a noise margin;
        # the bench asserts strictly at the full bench scale).
        assert results["All"]["f_score"] >= \
            results["GFs"]["f_score"] - 0.01
        assert results["All"]["f_score"] >= \
            results["HLFs+HFs+TFs"]["f_score"]
        assert results["All"]["tpr"] > 0.9
        assert results["All"]["fpr"] < 0.1


class TestTable4:
    def test_top20_graph_heavy(self):
        ranked = table4.run(SEED, SCALE, k=5, top=20)
        assert len(ranked) == 20
        # Paper: graph features are 15 of the top 20; require a majority.
        assert table4.graph_features_in_top(ranked) >= 10
        # Paper: 15 of the top 20 are novel features.
        assert table4.novel_features_in_top(ranked) >= 10

    def test_ranks_ascend(self):
        ranked = table4.run(SEED, SCALE, k=5, top=20)
        means = [r.rank_mean for r in ranked]
        assert means == sorted(means)


class TestFig10:
    def test_roc_high_auc(self):
        data = fig10.run(SEED, SCALE, k=5)
        assert data["auc"] > 0.95  # paper ROC area 0.978
        assert data["fpr"][0] == 0.0
        assert data["tpr"][-1] == 1.0


class TestTable5:
    def test_dynaminer_beats_virustotal(self):
        results = table5.run(SEED, SCALE)
        dm = results["dynaminer"]
        vt = results["virustotal"]
        assert dm["infection_rate"] > vt["infection_rate"]
        assert dm["infection_rate"] > 0.9   # paper: 97.38%
        assert vt["infection_rate"] < 0.95  # paper: 84.3%
        assert dm["benign_rate"] > 0.9      # paper: 98.1%

    def test_report_renders(self):
        assert "Table V" in table5.report(SEED, SCALE)


class TestCaseStudy1:
    def test_forensic_shape(self):
        results = case_study1.run(SEED, SCALE)
        assert results["replay"].transactions == 3011
        # 5 infectious episodes; DynaMiner alerts on most of them.
        assert results["infectious_episodes"] == 5
        assert 3 <= results["replay"].alert_count <= 8
        # The content-borne PDF: clean at capture, flagged by day 11.
        assert results["pdf_story"]["day0"] == 0
        assert results["pdf_story"]["day11"] >= 3


class TestTable6:
    def test_live_shape(self):
        results = table6.run(SEED, SCALE)
        alerts = results["per_host_alerts"]
        # Table VI: 4 / 3 / 1 alerts; windows strictly the most.
        assert alerts["win-host"] >= alerts["macos-host"]
        assert results["total_alerts"] >= 5
        assert results["content_pdf_flagged_by_vt"] >= 1


class TestEvasion:
    def test_ordering(self):
        results = evasion.run(SEED, SCALE, episodes_per_mode=24)
        scores = {m: v["mean_score"] for m, v in results.items()}
        assert scores["baseline"] >= scores["full-stealth"]
        assert scores["full-stealth"] == min(scores.values())

    def test_all_modes_present(self):
        assert set(evasion.EVASION_MODES) == {
            "baseline", "cloaked-redirects", "no-post-download",
            "compressed-payload", "full-stealth",
        }


class TestAblations:
    def test_voting(self):
        results = ablations.run_voting(SEED, SCALE, k=5)
        assert set(results) == {"average", "majority"}
        # Averaging should not lose to majority voting on F-score.
        assert results["average"]["f_score"] >= \
            results["majority"]["f_score"] - 0.02

    def test_threshold_sweep_monotone_work(self):
        results = ablations.run_threshold_sweep(SEED, SCALE,
                                                thresholds=(1, 3, 8))
        # Lower thresholds cannot classify less than higher ones.
        assert results[1]["classifications"] >= \
            results[8]["classifications"]

    def test_whitelist_reduces_work(self):
        results = ablations.run_whitelist(SEED, SCALE)
        assert results["on"]["weeded"] > 0
        assert results["off"]["weeded"] == 0


class TestOperatingPoints:
    def test_monotone_tradeoff(self):
        points = fig10.operating_points(SEED, SCALE)
        thresholds = sorted(points)
        tprs = [points[t]["tpr"] for t in thresholds]
        fprs = [points[t]["fpr"] for t in thresholds]
        # Raising the threshold never raises TPR or FPR.
        assert all(a >= b for a, b in zip(tprs, tprs[1:]))
        assert all(a >= b for a, b in zip(fprs, fprs[1:]))

    def test_bounds(self):
        for point in fig10.operating_points(SEED, SCALE).values():
            assert 0.0 <= point["tpr"] <= 1.0
            assert 0.0 <= point["fpr"] <= 1.0
