"""Unit tests for stratified k-fold CV."""

import numpy as np
import pytest

from repro.exceptions import LearningError
from repro.learning.crossval import CrossValResult, cross_validate, stratified_kfold
from repro.learning.forest import EnsembleRandomForest


def _labels(n_pos=30, n_neg=70):
    return np.array([1] * n_pos + [0] * n_neg)


class TestStratifiedKfold:
    def test_partition_is_complete_and_disjoint(self):
        y = _labels()
        seen = []
        for train_idx, test_idx in stratified_kfold(y, k=5, seed=0):
            assert set(train_idx) & set(test_idx) == set()
            assert len(train_idx) + len(test_idx) == len(y)
            seen.extend(test_idx)
        assert sorted(seen) == list(range(len(y)))

    def test_stratification(self):
        y = _labels(n_pos=20, n_neg=80)
        for _, test_idx in stratified_kfold(y, k=5, seed=0):
            positives = int(y[test_idx].sum())
            assert positives == 4  # 20 positives spread over 5 folds

    def test_too_few_samples(self):
        y = np.array([1, 1, 0, 0, 0])
        with pytest.raises(LearningError, match="cannot make"):
            list(stratified_kfold(y, k=3, seed=0))

    def test_k_must_be_at_least_two(self):
        with pytest.raises(LearningError, match="k must be"):
            list(stratified_kfold(_labels(), k=1))

    def test_deterministic(self):
        y = _labels()
        folds_a = [t.tolist() for _, t in stratified_kfold(y, k=4, seed=9)]
        folds_b = [t.tolist() for _, t in stratified_kfold(y, k=4, seed=9)]
        assert folds_a == folds_b

    def test_seed_changes_folds(self):
        y = _labels()
        folds_a = [t.tolist() for _, t in stratified_kfold(y, k=4, seed=1)]
        folds_b = [t.tolist() for _, t in stratified_kfold(y, k=4, seed=2)]
        assert folds_a != folds_b


class TestCrossValidate:
    def _data(self, n=100, seed=0):
        rng = np.random.default_rng(seed)
        X0 = rng.normal(-1.5, 1.0, size=(n // 2, 4))
        X1 = rng.normal(1.5, 1.0, size=(n // 2, 4))
        return np.vstack([X0, X1]), np.array([0] * (n // 2) + [1] * (n // 2))

    def test_fold_count(self):
        X, y = self._data()
        result = cross_validate(X, y, k=5, seed=0)
        assert len(result.per_fold) == 5

    def test_reasonable_accuracy(self):
        X, y = self._data()
        result = cross_validate(X, y, k=5, seed=0)
        assert result.mean("tpr") > 0.85
        assert result.mean("fpr") < 0.15

    def test_feature_subset(self):
        X, y = self._data()
        noise = np.random.default_rng(1).normal(size=(len(y), 2))
        X_noisy = np.hstack([noise, X])
        informative = cross_validate(X_noisy, y, k=4, seed=0,
                                     feature_indices=[2, 3, 4, 5])
        noise_only = cross_validate(X_noisy, y, k=4, seed=0,
                                    feature_indices=[0, 1])
        assert informative.mean("roc_area") > noise_only.mean("roc_area")

    def test_custom_model_factory(self):
        X, y = self._data(60)
        calls = []

        def factory():
            calls.append(1)
            return EnsembleRandomForest(n_trees=3, random_state=0)

        cross_validate(X, y, k=3, seed=0, model_factory=factory)
        assert len(calls) == 3

    def test_summary_and_std(self):
        X, y = self._data()
        result = cross_validate(X, y, k=4, seed=0)
        summary = result.summary()
        assert "tpr" in summary and "roc_area" in summary
        assert result.std("tpr") >= 0.0

    def test_empty_result_summary(self):
        assert CrossValResult().summary() == {}
