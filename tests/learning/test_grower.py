"""Differential suite for the presorted-partition training engine.

The presort engine must grow trees **byte-identical** to the legacy
recursive-partition grower — same structure, same split features, same
threshold bits, same leaf posterior bits — for every configuration and
any ``n_jobs``.  These tests pin that contract, plus the kernel helpers
the engine and the ranking fast path share.
"""

import os
import pickle
import sys

import numpy as np
import pytest

from repro.exceptions import LearningError
from repro.learning.forest import EnsembleRandomForest
from repro.learning.grower import (
    ColumnRanks,
    class_cumulative_counts,
    compute_column_ranks,
    grow_tree_presorted,
    presort_columns,
    restrict_sorted,
)
from repro.learning.persistence import forest_from_dict, forest_to_dict
from repro.learning.tree import DecisionTreeClassifier, default_tree_engine


def _tree_sig(node):
    """Recursive byte-level signature of a fitted tree."""
    if node.proba is not None:
        return ("leaf", node.proba.tobytes())
    return (
        "split",
        node.feature,
        np.float64(node.threshold).tobytes(),
        _tree_sig(node.left),
        _tree_sig(node.right),
    )


def _tree_sig_iter(root):
    """Iterative signature for trees deeper than the recursion limit."""
    out = []
    stack = [root]
    while stack:
        node = stack.pop()
        if node.proba is not None:
            out.append(("leaf", node.proba.tobytes()))
        else:
            out.append(
                ("split", node.feature, np.float64(node.threshold).tobytes())
            )
            stack.append(node.right)
            stack.append(node.left)
    return out


def _mixed_data(seed, n_classes=2):
    """Continuous + heavily tied columns, plus duplicate and constant."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(30, 200))
    Xc = rng.normal(size=(n, 2))
    Xd = rng.integers(0, 4, size=(n, 2)).astype(np.float64)
    X = np.hstack([Xc, Xd, Xc[:, :1], np.full((n, 1), 3.0)])
    y = rng.integers(0, n_classes, size=n)
    y[:n_classes] = np.arange(n_classes)
    return X, y


class TestKernels:
    def test_column_ranks_are_order_isomorphic(self):
        rng = np.random.default_rng(0)
        X = rng.integers(0, 5, size=(40, 6)).astype(np.float64)
        ranks = compute_column_ranks(X)
        assert ranks.codes.shape == (6, 40)
        for j in range(6):
            col = X[:, j]
            codes = ranks.codes[j].astype(np.int64)
            for a in range(40):
                for b in range(40):
                    assert (codes[a] < codes[b]) == (col[a] < col[b])

    def test_column_ranks_decode_table(self):
        rng = np.random.default_rng(1)
        X = np.round(rng.normal(size=(50, 4)) * 2) / 2
        ranks = compute_column_ranks(X)
        for j in range(4):
            decoded = ranks.values[j][ranks.codes[j].astype(np.intp)]
            assert np.array_equal(decoded, X[:, j])

    def test_restrict_sorted_matches_direct_argsort_order(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(60, 3))
        keep = rng.random(60) < 0.5
        keep[:2] = True
        sub = restrict_sorted(presort_columns(X), keep)
        for j in range(3):
            assert np.array_equal(np.sort(X[sub[:, j], j]), np.sort(X[keep, j]))
            assert np.all(np.diff(X[sub[:, j], j]) >= 0)

    def test_class_cumulative_counts_matches_onehot_cumsum(self):
        rng = np.random.default_rng(3)
        codes = rng.integers(0, 3, size=100)
        onehot = np.zeros((100, 3))
        onehot[np.arange(100), codes] = 1.0
        want = np.cumsum(onehot, axis=0)
        assert np.array_equal(class_cumulative_counts(codes, 3), want)
        buf = np.empty((120, 3))
        assert np.array_equal(class_cumulative_counts(codes, 3, out=buf), want)

    def test_grow_tree_rejects_mismatched_ranks(self):
        X = np.zeros((10, 2))
        y = np.array([0, 1] * 5)
        bad = compute_column_ranks(np.zeros((9, 2)))
        with pytest.raises(ValueError, match="does not match"):
            grow_tree_presorted(
                X, y, 2, max_depth=None, min_samples_split=2,
                min_samples_leaf=1, max_features=None, criterion="gini",
                rng=np.random.default_rng(0), column_ranks=bad,
            )


class TestTreeDifferential:
    @pytest.mark.parametrize("criterion", ["gini", "entropy"])
    @pytest.mark.parametrize("max_features", [None, 1, "all"])
    def test_trees_byte_identical(self, criterion, max_features):
        for seed in range(8):
            X, y = _mixed_data(seed, n_classes=2 + seed % 2)
            mf = X.shape[1] if max_features == "all" else max_features
            kwargs = dict(
                criterion=criterion, max_features=mf,
                random_state=seed * 13 + 1,
            )
            legacy = DecisionTreeClassifier(engine="legacy", **kwargs).fit(X, y)
            presort = DecisionTreeClassifier(engine="presort", **kwargs).fit(X, y)
            assert _tree_sig(legacy._root) == _tree_sig(presort._root)
            assert np.array_equal(legacy.predict(X), presort.predict(X))

    @pytest.mark.parametrize("min_samples_leaf", [1, 7])
    @pytest.mark.parametrize("max_depth", [None, 3])
    def test_trees_byte_identical_under_stopping_rules(
        self, max_depth, min_samples_leaf
    ):
        for seed in range(6):
            X, y = _mixed_data(seed + 100)
            kwargs = dict(
                max_depth=max_depth, min_samples_leaf=min_samples_leaf,
                max_features=2, random_state=seed,
            )
            legacy = DecisionTreeClassifier(engine="legacy", **kwargs).fit(X, y)
            presort = DecisionTreeClassifier(engine="presort", **kwargs).fit(X, y)
            assert _tree_sig(legacy._root) == _tree_sig(presort._root)

    def test_deep_tree_past_recursion_limit(self):
        n = sys.getrecursionlimit() + 50
        X = np.arange(n, dtype=np.float64).reshape(-1, 1)
        y = np.arange(n) % 2
        legacy = DecisionTreeClassifier(engine="legacy").fit(X, y)
        presort = DecisionTreeClassifier(engine="presort").fit(X, y)
        assert presort.depth > sys.getrecursionlimit()
        assert _tree_sig_iter(legacy._root) == _tree_sig_iter(presort._root)
        assert np.array_equal(presort.predict(X), y)

    def test_shared_ranks_match_per_fit_ranks(self):
        X, y = _mixed_data(5)
        ranks = compute_column_ranks(X)
        a = DecisionTreeClassifier(engine="presort", random_state=3).fit(X, y)
        b = DecisionTreeClassifier(engine="presort", random_state=3).fit(
            X, y, column_ranks=ranks
        )
        assert _tree_sig(a._root) == _tree_sig(b._root)

    def test_unknown_engine_rejected(self):
        with pytest.raises(LearningError, match="unknown tree engine"):
            DecisionTreeClassifier(engine="quicksort")
        with pytest.raises(LearningError, match="unknown tree engine"):
            EnsembleRandomForest(tree_engine="quicksort")

    def test_env_knob_selects_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_TREE_ENGINE", "legacy")
        assert default_tree_engine() == "legacy"
        assert DecisionTreeClassifier().engine == "legacy"
        assert EnsembleRandomForest().tree_engine == "legacy"
        monkeypatch.delenv("REPRO_TREE_ENGINE")
        assert default_tree_engine() == "presort"


class TestForestDifferential:
    @pytest.mark.parametrize("n_jobs", [None, 4])
    def test_forests_byte_identical_across_engines_and_jobs(self, n_jobs):
        X, y = _mixed_data(11)
        forests = {}
        for engine in ("legacy", "presort"):
            f = EnsembleRandomForest(
                n_trees=8, random_state=42, tree_engine=engine
            )
            f.fit(X, y, n_jobs=n_jobs)
            forests[engine] = forest_to_dict(f)
        assert forests["legacy"] == forests["presort"]

    def test_presort_forest_identical_serial_vs_parallel(self):
        X, y = _mixed_data(12)
        serial = EnsembleRandomForest(n_trees=6, random_state=9).fit(X, y)
        parallel = EnsembleRandomForest(n_trees=6, random_state=9).fit(
            X, y, n_jobs=4
        )
        assert forest_to_dict(serial) == forest_to_dict(parallel)

    def test_pickled_presort_forest_roundtrips_format_v2(self):
        X, y = _mixed_data(13)
        forest = EnsembleRandomForest(
            n_trees=5, random_state=21, tree_engine="presort"
        ).fit(X, y)
        payload = forest_to_dict(forest)
        assert payload["format_version"] == 2
        revived = pickle.loads(pickle.dumps(forest))
        assert forest_to_dict(revived) == payload
        assert forest_to_dict(forest_from_dict(payload)) == payload
        Xt = _mixed_data(14)[0][:, : X.shape[1]]
        assert np.array_equal(
            forest.predict_proba(Xt), revived.predict_proba(Xt)
        )

    def test_pre_knob_pickle_gains_default_engine(self):
        X, y = _mixed_data(15)
        forest = EnsembleRandomForest(n_trees=3, random_state=5).fit(X, y)
        state = forest.__getstate__() if hasattr(forest, "__getstate__") \
            else dict(forest.__dict__)
        state = dict(state)
        state.pop("tree_engine", None)
        revived = EnsembleRandomForest.__new__(EnsembleRandomForest)
        revived.__setstate__(state)
        assert revived.tree_engine == default_tree_engine()


class TestRankingFastPath:
    def test_fold_ratios_bit_identical_to_gain_ratio(self):
        from repro.learning.crossval import stratified_kfold
        from repro.learning.ranking import _fold_gain_ratios, gain_ratio

        rng = np.random.default_rng(17)
        X = np.round(rng.normal(size=(120, 7)) * 2) / 2
        X[:, 5] = X[:, 0]
        X[:, 6] = 1.5
        y = rng.integers(0, 3, size=120).astype(np.float64)
        y[:3] = [0, 1, 2]
        sorted_idx = presort_columns(X)
        for train_idx, _ in stratified_kfold(y, k=5, seed=1):
            fast = _fold_gain_ratios(X, sorted_idx, y, train_idx)
            slow = np.array(
                [gain_ratio(X[train_idx, j], y[train_idx]) for j in range(7)]
            )
            assert np.array_equal(fast, slow)
