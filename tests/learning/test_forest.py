"""Unit tests for the Ensemble Random Forest."""

import numpy as np
import pytest

from repro.exceptions import LearningError, NotFittedError
from repro.learning.forest import EnsembleRandomForest, default_max_features


def _separable(n=120, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=-1.5, size=(n // 2, 5))
    X1 = rng.normal(loc=1.5, size=(n // 2, 5))
    return np.vstack([X0, X1]), np.array([0] * (n // 2) + [1] * (n // 2))


class TestDefaults:
    def test_paper_max_features_rule(self):
        # N_f = log2(37) + 1 = 6 for the paper's 37 features.
        assert default_max_features(37) == 6
        assert default_max_features(2) == 2
        assert default_max_features(1) == 2  # clamped

    def test_default_is_twenty_trees(self):
        assert EnsembleRandomForest().n_trees == 20


class TestFitPredict:
    def test_accuracy_on_separable(self):
        X, y = _separable()
        forest = EnsembleRandomForest(n_trees=10, random_state=0).fit(X, y)
        assert (forest.predict(X) == y).mean() > 0.95

    def test_probability_averaging_smooth_scores(self):
        X, y = _separable()
        forest = EnsembleRandomForest(n_trees=20, max_depth=2,
                                      random_state=0).fit(X, y)
        scores = forest.decision_scores(X)
        # Averaged leaf probabilities produce more than 2 score levels.
        assert len(np.unique(scores)) > 3
        assert scores.min() >= 0.0
        assert scores.max() <= 1.0

    def test_majority_voting_mode(self):
        X, y = _separable()
        forest = EnsembleRandomForest(n_trees=11, voting="majority",
                                      random_state=0).fit(X, y)
        scores = forest.decision_scores(X)
        # Hard votes: scores are k/11 fractions.
        assert np.allclose((scores * 11) % 1, 0.0)

    def test_invalid_voting(self):
        with pytest.raises(LearningError, match="voting"):
            EnsembleRandomForest(voting="quantum")

    def test_invalid_n_trees(self):
        with pytest.raises(LearningError, match="n_trees"):
            EnsembleRandomForest(n_trees=0)

    def test_unfitted_predict(self):
        with pytest.raises(NotFittedError):
            EnsembleRandomForest().predict(np.ones((1, 5)))

    def test_empty_fit(self):
        with pytest.raises(LearningError, match="empty"):
            EnsembleRandomForest().fit(np.empty((0, 3)), np.empty(0))

    def test_mismatched_lengths(self):
        with pytest.raises(LearningError, match="mismatch"):
            EnsembleRandomForest().fit(np.ones((4, 2)), np.ones(3))

    def test_determinism(self):
        X, y = _separable()
        fa = EnsembleRandomForest(n_trees=5, random_state=3).fit(X, y)
        fb = EnsembleRandomForest(n_trees=5, random_state=3).fit(X, y)
        assert np.array_equal(fa.decision_scores(X), fb.decision_scores(X))

    def test_different_seeds_differ(self):
        X, y = _separable()
        fa = EnsembleRandomForest(n_trees=5, random_state=3).fit(X, y)
        fb = EnsembleRandomForest(n_trees=5, random_state=4).fit(X, y)
        assert not np.array_equal(fa.decision_scores(X),
                                  fb.decision_scores(X))

    def test_no_bootstrap_mode(self):
        X, y = _separable()
        forest = EnsembleRandomForest(n_trees=3, bootstrap=False,
                                      max_features=5,
                                      random_state=0).fit(X, y)
        # Without bootstrap and with all features, trees are identical.
        scores = [t.predict_proba(X) for t in forest.trees_]
        assert np.array_equal(scores[0], scores[1])

    def test_tiny_dataset_bootstrap_guard(self):
        # 3 samples, 2 classes: naive bootstrap often drops a class.
        X = np.array([[0.0], [1.0], [2.0]])
        y = np.array([0, 1, 1])
        forest = EnsembleRandomForest(n_trees=10, random_state=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert proba.shape == (3, 2)

    def test_ensemble_variance_reduction(self):
        # Paper claim (Section V-A): averaging reduces variance vs a
        # single tree.  Measure prediction variance across resamples.
        rng = np.random.default_rng(0)
        X, y = _separable(150, seed=1)
        grid = rng.normal(size=(40, 5))
        single_scores, forest_scores = [], []
        for seed in range(8):
            sample = rng.integers(0, len(X), size=len(X))
            forest = EnsembleRandomForest(n_trees=15, random_state=seed)
            forest.fit(X[sample], y[sample])
            forest_scores.append(forest.decision_scores(grid))
            lone = EnsembleRandomForest(n_trees=1, random_state=seed)
            lone.fit(X[sample], y[sample])
            single_scores.append(lone.decision_scores(grid))
        forest_var = np.var(np.vstack(forest_scores), axis=0).mean()
        single_var = np.var(np.vstack(single_scores), axis=0).mean()
        assert forest_var < single_var

    def test_feature_importances(self):
        X, y = _separable()
        forest = EnsembleRandomForest(n_trees=5, random_state=0).fit(X, y)
        importances = forest.feature_importances()
        assert importances.shape == (5,)
        assert importances.sum() == pytest.approx(1.0)

    def test_importances_unfitted(self):
        with pytest.raises(NotFittedError):
            EnsembleRandomForest().feature_importances()


class TestDecisionScores:
    def test_benign_only_fit_scores_zero(self):
        # Regression: proba[:, -1] on a single-class (benign) fit used
        # to report probability 1.0 for "infection" on every sample.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 3))
        forest = EnsembleRandomForest(n_trees=3, random_state=0)
        forest.fit(X, np.zeros(20))
        assert np.array_equal(forest.decision_scores(X), np.zeros(20))

    def test_infection_only_fit_scores_one(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(20, 3))
        forest = EnsembleRandomForest(n_trees=3, random_state=0)
        forest.fit(X, np.ones(20))
        assert np.array_equal(forest.decision_scores(X), np.ones(20))

    def test_two_class_scores_are_class1_column(self):
        X, y = _separable()
        forest = EnsembleRandomForest(n_trees=5, random_state=0).fit(X, y)
        proba = forest.predict_proba(X)
        assert np.array_equal(forest.decision_scores(X), proba[:, 1])


class TestProbabilityNormalization:
    def test_divides_by_actual_tree_count(self):
        # Regression: predict_proba divided by the n_trees attribute,
        # so a forest whose trees_ list diverges from it (e.g. a stale
        # payload) silently skewed every probability.
        X, y = _separable()
        forest = EnsembleRandomForest(n_trees=4, random_state=0).fit(X, y)
        forest.n_trees = 99
        assert np.allclose(forest.predict_proba(X).sum(axis=1), 1.0)

    def test_majority_votes_normalized(self):
        X, y = _separable()
        forest = EnsembleRandomForest(n_trees=5, voting="majority",
                                      random_state=0).fit(X, y)
        forest.n_trees = 99
        assert np.allclose(forest.predict_proba(X).sum(axis=1), 1.0)
