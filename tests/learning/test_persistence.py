"""Unit tests for model serialization."""

import numpy as np
import pytest

from repro.exceptions import LearningError
from repro.learning.forest import EnsembleRandomForest
from repro.learning.persistence import (
    forest_from_dict,
    forest_to_dict,
    load_forest,
    save_forest,
)


@pytest.fixture(scope="module")
def fitted():
    rng = np.random.default_rng(0)
    X = np.vstack([rng.normal(-1, 1, (40, 4)), rng.normal(1, 1, (40, 4))])
    y = np.array([0] * 40 + [1] * 40)
    forest = EnsembleRandomForest(n_trees=7, random_state=1).fit(X, y)
    return forest, X, y


class TestRoundTrip:
    def test_dict_roundtrip_preserves_scores(self, fitted):
        forest, X, _ = fitted
        rebuilt = forest_from_dict(forest_to_dict(forest))
        assert np.array_equal(
            rebuilt.decision_scores(X), forest.decision_scores(X)
        )

    def test_file_roundtrip(self, fitted, tmp_path):
        forest, X, _ = fitted
        path = str(tmp_path / "model.json")
        save_forest(forest, path)
        loaded = load_forest(path)
        assert np.array_equal(
            loaded.decision_scores(X), forest.decision_scores(X)
        )
        assert np.array_equal(loaded.predict(X), forest.predict(X))

    def test_voting_mode_preserved(self, fitted, tmp_path):
        _, X, y = fitted
        forest = EnsembleRandomForest(n_trees=3, voting="majority",
                                      random_state=2).fit(X, y)
        path = str(tmp_path / "m.json")
        save_forest(forest, path)
        assert load_forest(path).voting == "majority"

    def test_loaded_model_drives_detector(self, fitted, tmp_path,
                                          trained_model, small_corpus):
        from repro.detection.detector import OnTheWireDetector
        from repro.learning.persistence import save_forest, load_forest

        path = str(tmp_path / "det.json")
        save_forest(trained_model, path)
        detector = OnTheWireDetector(load_forest(path))
        infection = next(
            t for t in small_corpus.infections if not t.meta.get("stealth")
        )
        detector.process_stream(infection.transactions)
        detector.finalize()
        assert detector.alerts


class TestValidation:
    def test_unfitted_forest_rejected(self):
        with pytest.raises(LearningError, match="unfitted"):
            forest_to_dict(EnsembleRandomForest())

    def test_wrong_model_type(self):
        with pytest.raises(LearningError, match="not a forest"):
            forest_from_dict({"model": "SVM"})

    def test_wrong_version(self, fitted):
        forest, _, _ = fitted
        payload = forest_to_dict(forest)
        payload["format_version"] = 99
        with pytest.raises(LearningError, match="version"):
            forest_from_dict(payload)


class TestPayloadIntegrity:
    def test_tree_count_mismatch_rejected(self, fitted):
        # Regression: a payload whose trees list diverged from its
        # n_trees field used to load silently and skew probabilities.
        forest, _, _ = fitted
        payload = forest_to_dict(forest)
        payload["trees"] = payload["trees"][:-1]
        with pytest.raises(LearningError, match="trees"):
            forest_from_dict(payload)

    def test_hyperparameters_roundtrip(self, fitted):
        # Regression: max_features / criterion / max_depth (and friends)
        # used to be dropped on load.
        _, X, y = fitted
        forest = EnsembleRandomForest(
            n_trees=3, max_features=2, max_depth=4, min_samples_split=3,
            min_samples_leaf=2, criterion="entropy", bootstrap=False,
            random_state=9,
        ).fit(X, y)
        rebuilt = forest_from_dict(forest_to_dict(forest))
        assert rebuilt.max_features == 2
        assert rebuilt.max_depth == 4
        assert rebuilt.min_samples_split == 3
        assert rebuilt.min_samples_leaf == 2
        assert rebuilt.criterion == "entropy"
        assert rebuilt.bootstrap is False
        assert rebuilt.random_state == 9

    def test_version1_nested_payload_still_loads(self, fitted):
        """Back-compat: models saved by format version 1 must load."""
        forest, X, _ = fitted

        def nest(nodes, index):
            node = dict(nodes[index])
            if "proba" in node:
                return node
            node["left"] = nest(nodes, node["left"])
            node["right"] = nest(nodes, node["right"])
            return node

        payload = forest_to_dict(forest)
        payload["format_version"] = 1
        for tree in payload["trees"]:
            tree["root"] = nest(tree.pop("nodes"), 0)
        rebuilt = forest_from_dict(payload)
        assert np.array_equal(
            rebuilt.decision_scores(X), forest.decision_scores(X)
        )
