"""Unit tests for dataset containers and splitting."""

import numpy as np
import pytest

from repro.exceptions import LearningError
from repro.learning.dataset import LabeledDataset, train_test_split


def _dataset(n=100, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.normal(size=(n, 3))
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return LabeledDataset(X=X, y=y, feature_names=["a", "b", "c"])


class TestLabeledDataset:
    def test_counts(self):
        data = _dataset()
        assert len(data) == 100
        assert data.positives == 50
        assert data.negatives == 50
        assert data.n_features == 3

    def test_length_mismatch(self):
        with pytest.raises(LearningError):
            LabeledDataset(X=np.ones((3, 2)), y=np.ones(4),
                           feature_names=["a", "b"])

    def test_name_mismatch(self):
        with pytest.raises(LearningError):
            LabeledDataset(X=np.ones((3, 2)), y=np.ones(3),
                           feature_names=["only-one"])

    def test_select_columns(self):
        data = _dataset()
        subset = data.select([0, 2])
        assert subset.feature_names == ["a", "c"]
        assert subset.X.shape == (100, 2)
        assert np.array_equal(subset.X[:, 1], data.X[:, 2])

    def test_subset_rows(self):
        data = _dataset()
        mask = data.y == 1
        positives = data.subset(mask)
        assert len(positives) == 50
        assert positives.negatives == 0


class TestTrainTestSplit:
    def test_stratified_proportions(self):
        data = _dataset(200)
        train, test = train_test_split(data, test_fraction=0.25, seed=0)
        assert len(test) == 50
        assert test.positives == 25
        assert len(train) + len(test) == 200

    def test_no_row_overlap(self):
        data = _dataset(60)
        # Tag rows with a unique value so overlap is detectable.
        data.X[:, 0] = np.arange(60)
        train, test = train_test_split(data, test_fraction=0.3, seed=1)
        assert set(train.X[:, 0]) & set(test.X[:, 0]) == set()

    def test_invalid_fraction(self):
        with pytest.raises(LearningError):
            train_test_split(_dataset(), test_fraction=1.5)
        with pytest.raises(LearningError):
            train_test_split(_dataset(), test_fraction=0.0)

    def test_deterministic(self):
        data = _dataset()
        train_a, _ = train_test_split(data, seed=7)
        train_b, _ = train_test_split(data, seed=7)
        assert np.array_equal(train_a.X, train_b.X)


class TestTinyClassSplit:
    def _dataset_with_counts(self, negatives, positives):
        n = negatives + positives
        X = np.arange(n, dtype=np.float64).reshape(-1, 1)
        y = np.array([0] * negatives + [1] * positives)
        return LabeledDataset(X=X, y=y, feature_names=["a"])

    def test_singleton_class_stays_in_train(self):
        # Regression: max(1, ...) used to send a 1-sample class entirely
        # to the test partition, so training never saw the class.
        data = self._dataset_with_counts(10, 1)
        train, test = train_test_split(data, test_fraction=0.3, seed=0)
        assert train.positives == 1
        assert test.positives == 0

    def test_two_sample_class_keeps_one_in_train(self):
        data = self._dataset_with_counts(10, 2)
        train, test = train_test_split(data, test_fraction=0.9, seed=0)
        assert train.positives == 1
        assert test.positives == 1

    def test_large_class_unaffected(self):
        data = self._dataset_with_counts(100, 100)
        train, test = train_test_split(data, test_fraction=0.3, seed=0)
        assert test.positives == 30
        assert train.positives == 70
