"""Unit + property tests for the CART decision tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LearningError, NotFittedError
from repro.learning.tree import DecisionTreeClassifier


def _separable(n=100, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=-2.0, size=(n // 2, 3))
    X1 = rng.normal(loc=2.0, size=(n // 2, 3))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y


class TestFit:
    def test_perfect_fit_on_separable(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.array_equal(tree.predict(X), y)

    def test_training_accuracy_unbounded_depth(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(80, 4))
        y = rng.integers(0, 2, size=80)
        tree = DecisionTreeClassifier().fit(X, y)
        # With unique rows, an unbounded tree memorizes training data.
        assert (tree.predict(X) == y).mean() == 1.0

    def test_max_depth_limits(self):
        X, y = _separable(200, seed=2)
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert tree.depth <= 2

    def test_min_samples_leaf(self):
        X, y = _separable(40, seed=3)
        tree = DecisionTreeClassifier(min_samples_leaf=10).fit(X, y)
        # Any leaf's training support must be >= 10: proxy via node count.
        assert tree.node_count <= 2 * (40 // 10) + 1

    def test_single_class_gives_leaf(self):
        X = np.ones((10, 2))
        y = np.zeros(10)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth == 0
        assert np.all(tree.predict(X) == 0)

    def test_constant_features_give_leaf(self):
        X = np.ones((10, 2))
        y = np.array([0, 1] * 5)
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree.depth == 0

    def test_entropy_criterion(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(criterion="entropy").fit(X, y)
        assert (tree.predict(X) == y).all()

    def test_unknown_criterion(self):
        with pytest.raises(LearningError, match="unknown criterion"):
            DecisionTreeClassifier(criterion="magic")

    def test_empty_dataset(self):
        with pytest.raises(LearningError, match="empty"):
            DecisionTreeClassifier().fit(np.empty((0, 3)), np.empty(0))

    def test_length_mismatch(self):
        with pytest.raises(LearningError, match="rows"):
            DecisionTreeClassifier().fit(np.ones((5, 2)), np.ones(4))

    def test_1d_input_rejected(self):
        with pytest.raises(LearningError, match="2-dimensional"):
            DecisionTreeClassifier().fit(np.ones(5), np.ones(5))


class TestPredict:
    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            DecisionTreeClassifier().predict(np.ones((1, 2)))

    def test_wrong_width_raises(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        with pytest.raises(LearningError, match="expected shape"):
            tree.predict(np.ones((2, 7)))

    def test_proba_rows_sum_to_one(self):
        X, y = _separable()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        proba = tree.predict_proba(X)
        assert np.allclose(proba.sum(axis=1), 1.0)
        assert proba.min() >= 0.0

    def test_string_labels_supported(self):
        X, _ = _separable(40)
        y = np.array(["ben"] * 20 + ["mal"] * 20)
        tree = DecisionTreeClassifier().fit(X, y)
        assert set(tree.predict(X)) <= {"ben", "mal"}


class TestFeatureSubsetting:
    def test_max_features_respected_statistically(self):
        # With max_features=1 of 2 and an informative + noise feature,
        # trees seeded differently should sometimes split on the noise
        # feature at the root, proving subsetting happens.
        rng = np.random.default_rng(5)
        X = np.column_stack([
            np.concatenate([rng.normal(-3, 1, 50), rng.normal(3, 1, 50)]),
            rng.normal(size=100),
        ])
        y = np.array([0] * 50 + [1] * 50)
        root_features = set()
        for seed in range(20):
            tree = DecisionTreeClassifier(max_features=1,
                                          random_state=seed).fit(X, y)
            root_features.add(tree._root.feature)
        assert root_features == {0, 1}

    def test_importances_sum_to_one(self):
        X, y = _separable()
        tree = DecisionTreeClassifier().fit(X, y)
        importances = tree.feature_importances()
        assert importances.sum() == pytest.approx(1.0)
        assert importances.shape == (3,)


class TestTreeProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(5, 60),
        n_features=st.integers(1, 5),
        seed=st.integers(0, 10**6),
    )
    def test_fit_predict_never_crashes(self, n, n_features, seed):
        """Property: arbitrary numeric data fits and predicts cleanly."""
        rng = np.random.default_rng(seed)
        X = rng.normal(size=(n, n_features)).round(1)  # force ties
        y = rng.integers(0, 2, size=n)
        tree = DecisionTreeClassifier(max_features=1, random_state=seed)
        tree.fit(X, y)
        proba = tree.predict_proba(X)
        assert proba.shape[0] == n
        assert np.allclose(proba.sum(axis=1), 1.0)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_determinism(self, seed):
        X, y = _separable(50, seed=seed % 100)
        tree_a = DecisionTreeClassifier(max_features=2, random_state=seed)
        tree_b = DecisionTreeClassifier(max_features=2, random_state=seed)
        pa = tree_a.fit(X, y).predict_proba(X)
        pb = tree_b.fit(X, y).predict_proba(X)
        assert np.array_equal(pa, pb)
