"""Unit tests for gain-ratio feature ranking."""

import numpy as np
import pytest

from repro.learning.ranking import gain_ratio, rank_features


class TestGainRatio:
    def test_perfect_separator(self):
        column = np.array([0.0, 0.1, 0.2, 5.0, 5.1, 5.2])
        y = np.array([0, 0, 0, 1, 1, 1])
        assert gain_ratio(column, y) == pytest.approx(1.0)

    def test_constant_column(self):
        assert gain_ratio(np.ones(10), np.array([0, 1] * 5)) == 0.0

    def test_uninformative_column(self):
        rng = np.random.default_rng(0)
        column = rng.random(400)
        y = rng.integers(0, 2, size=400)
        assert gain_ratio(column, y) < 0.15

    def test_empty(self):
        assert gain_ratio(np.array([]), np.array([])) == 0.0

    def test_bounded_in_unit_interval(self):
        rng = np.random.default_rng(1)
        for _ in range(20):
            column = rng.normal(size=30)
            y = rng.integers(0, 2, size=30)
            assert 0.0 <= gain_ratio(column, y) <= 1.0

    def test_partial_separator_between_extremes(self):
        # Interleaved labels: informative but not perfectly separable.
        column = np.arange(8, dtype=float)
        y = np.array([0, 0, 1, 0, 1, 1, 0, 1])
        value = gain_ratio(column, y)
        assert 0.05 < value < 1.0


class TestRankFeatures:
    def _data(self, n=200, seed=0):
        rng = np.random.default_rng(seed)
        y = np.array([0] * (n // 2) + [1] * (n // 2))
        strong = y * 4.0 + rng.normal(0, 0.5, n)
        weak = y * 1.0 + rng.normal(0, 2.0, n)
        noise = rng.normal(size=n)
        return np.column_stack([noise, weak, strong]), y

    def test_ordering(self):
        X, y = self._data()
        ranked = rank_features(X, y, ["noise", "weak", "strong"], k=5)
        assert ranked[0].name == "strong"
        assert ranked[-1].name == "noise"

    def test_rank_means_start_at_one(self):
        X, y = self._data()
        ranked = rank_features(X, y, ["a", "b", "c"], k=5)
        assert ranked[0].rank_mean >= 1.0
        assert ranked[0].rank_mean <= 1.5  # strong feature wins every fold

    def test_stds_nonnegative(self):
        X, y = self._data()
        for row in rank_features(X, y, ["a", "b", "c"], k=5):
            assert row.gain_ratio_std >= 0.0
            assert row.rank_std >= 0.0

    def test_names_length_checked(self):
        X, y = self._data()
        with pytest.raises(ValueError, match="names length"):
            rank_features(X, y, ["only", "two"], k=5)

    def test_deterministic(self):
        X, y = self._data()
        first = rank_features(X, y, ["a", "b", "c"], k=5, seed=3)
        second = rank_features(X, y, ["a", "b", "c"], k=5, seed=3)
        assert [(r.name, r.rank_mean) for r in first] == [
            (r.name, r.rank_mean) for r in second
        ]
