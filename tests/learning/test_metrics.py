"""Unit + property tests for classification metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import LearningError
from repro.learning.metrics import (
    ConfusionMatrix,
    auc,
    confusion,
    evaluate_scores,
    roc_auc,
    roc_curve,
)


class TestConfusionMatrix:
    def test_rates(self):
        matrix = ConfusionMatrix(tp=90, fp=5, tn=95, fn=10)
        assert matrix.tpr == pytest.approx(0.9)
        assert matrix.fpr == pytest.approx(0.05)
        assert matrix.precision == pytest.approx(90 / 95)
        assert matrix.accuracy == pytest.approx(185 / 200)
        assert matrix.total == 200

    def test_f_score(self):
        matrix = ConfusionMatrix(tp=80, fp=20, tn=80, fn=20)
        precision = recall = 0.8
        expected = 2 * precision * recall / (precision + recall)
        assert matrix.f_score == pytest.approx(expected)

    def test_degenerate_zero_division(self):
        empty = ConfusionMatrix(tp=0, fp=0, tn=0, fn=0)
        assert empty.tpr == 0.0
        assert empty.fpr == 0.0
        assert empty.precision == 0.0
        assert empty.f_score == 0.0
        assert empty.accuracy == 0.0

    def test_confusion_builder(self):
        y_true = np.array([1, 1, 0, 0, 1])
        y_pred = np.array([1, 0, 0, 1, 1])
        matrix = confusion(y_true, y_pred)
        assert (matrix.tp, matrix.fn, matrix.tn, matrix.fp) == (2, 1, 1, 1)

    def test_shape_mismatch(self):
        with pytest.raises(LearningError, match="mismatch"):
            confusion(np.ones(3), np.ones(4))


class TestRocCurve:
    def test_perfect_separation(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        fpr, tpr, _ = roc_curve(y, scores)
        assert roc_auc(y, scores) == pytest.approx(1.0)
        assert fpr[0] == 0.0 and tpr[-1] == 1.0

    def test_inverted_scores(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(y, scores) == pytest.approx(0.0)

    def test_random_scores_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert roc_auc(y, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_collapsed(self):
        y = np.array([0, 1, 0, 1])
        scores = np.array([0.5, 0.5, 0.5, 0.5])
        fpr, tpr, thresholds = roc_curve(y, scores)
        # All-tied scores: single step from (0,0) to (1,1) -> AUC 0.5.
        assert roc_auc(y, scores) == pytest.approx(0.5)

    def test_thresholds_descend(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=50)
        scores = rng.random(50)
        _, _, thresholds = roc_curve(y, scores)
        assert all(np.diff(thresholds) <= 0)

    @settings(max_examples=40, deadline=None)
    @given(
        labels=st.lists(st.integers(0, 1), min_size=4, max_size=100).filter(
            lambda ls: 0 in ls and 1 in ls
        ),
        seed=st.integers(0, 10**6),
    )
    def test_roc_monotone_property(self, labels, seed):
        """Property: ROC points are monotone in both axes and span
        [0,1]x[0,1]."""
        rng = np.random.default_rng(seed)
        y = np.array(labels)
        scores = rng.random(len(y))
        fpr, tpr, _ = roc_curve(y, scores)
        assert np.all(np.diff(fpr) >= 0)
        assert np.all(np.diff(tpr) >= 0)
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0)
        assert tpr[-1] == pytest.approx(1.0)
        assert 0.0 <= roc_auc(y, scores) <= 1.0


class TestAuc:
    def test_unit_square(self):
        assert auc(np.array([0, 1]), np.array([1, 1])) == pytest.approx(1.0)

    def test_triangle(self):
        assert auc(np.array([0, 1]), np.array([0, 1])) == pytest.approx(0.5)

    def test_degenerate(self):
        assert auc(np.array([0.0]), np.array([1.0])) == 0.0


class TestEvaluateScores:
    def test_threshold_semantics(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.2, 0.6, 0.7, 0.9])
        strict = evaluate_scores(y, scores, threshold=0.65)
        assert strict["tpr"] == pytest.approx(1.0)
        assert strict["fpr"] == pytest.approx(0.0)
        lax = evaluate_scores(y, scores, threshold=0.5)
        assert lax["fpr"] == pytest.approx(0.5)

    def test_metric_keys(self):
        y = np.array([0, 1])
        scores = np.array([0.1, 0.9])
        result = evaluate_scores(y, scores)
        assert set(result) == {"tpr", "fpr", "f_score", "accuracy",
                               "roc_area", "precision"}


class TestNumpyCompat:
    def test_auc_under_numpy_1x_api(self, monkeypatch):
        """Regression: auc must work where only ``np.trapz`` exists.

        ``np.trapezoid`` appeared in numpy 2.0 while the declared floor
        is ``numpy>=1.24``; simulate the 1.x API surface and reload the
        module so the import-time fallback is exercised.
        """
        import importlib

        from repro.learning import metrics

        trap = getattr(np, "trapezoid", None) or np.trapz
        monkeypatch.setattr(np, "trapz", trap, raising=False)
        if hasattr(np, "trapezoid"):
            monkeypatch.delattr(np, "trapezoid")
        try:
            importlib.reload(metrics)
            assert metrics.auc(
                np.array([0.0, 0.5, 1.0]), np.array([0.0, 0.5, 1.0])
            ) == pytest.approx(0.5)
            assert metrics.roc_auc(
                np.array([0, 1]), np.array([0.2, 0.9])
            ) == pytest.approx(1.0)
        finally:
            monkeypatch.undo()
            importlib.reload(metrics)

    def test_auc_under_current_numpy(self):
        assert auc(np.array([0.0, 1.0]), np.array([0.0, 1.0])) \
            == pytest.approx(0.5)
