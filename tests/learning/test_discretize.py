"""Unit + property tests for MDL discretization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.learning.discretize import discretize, mdl_cut_points, mdl_gain_ratio
from repro.learning.ranking import rank_features


def _bimodal(n=200, seed=0):
    rng = np.random.default_rng(seed)
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    col = np.concatenate([
        rng.normal(-2, 1, n // 2), rng.normal(2, 1, n // 2)
    ])
    return col, y


class TestMdlCutPoints:
    def test_separable_gets_cut(self):
        col, y = _bimodal()
        cuts = mdl_cut_points(col, y)
        assert cuts
        assert -1.5 < cuts[0] < 1.5  # between the modes

    def test_noise_gets_no_cuts(self):
        rng = np.random.default_rng(1)
        col = rng.normal(size=300)
        y = rng.integers(0, 2, size=300)
        assert mdl_cut_points(col, y) == []

    def test_constant_column(self):
        y = np.array([0, 1] * 20)
        assert mdl_cut_points(np.ones(40), y) == []

    def test_three_cluster_column_gets_multiple_cuts(self):
        rng = np.random.default_rng(2)
        col = np.concatenate([
            rng.normal(-5, 0.5, 100), rng.normal(0, 0.5, 100),
            rng.normal(5, 0.5, 100),
        ])
        y = np.array([0] * 100 + [1] * 100 + [0] * 100)
        cuts = mdl_cut_points(col, y)
        assert len(cuts) >= 2

    def test_cuts_sorted(self):
        col, y = _bimodal(400, seed=3)
        cuts = mdl_cut_points(col, y)
        assert cuts == sorted(cuts)

    def test_tiny_input(self):
        assert mdl_cut_points(np.array([1.0, 2.0]),
                              np.array([0, 1])) == []


class TestDiscretize:
    def test_bins(self):
        bins = discretize(np.array([0.0, 1.5, 3.0]), [1.0, 2.0])
        assert list(bins) == [0, 1, 2]

    def test_no_cuts_single_bin(self):
        bins = discretize(np.array([1.0, 2.0]), [])
        assert list(bins) == [0, 0]


class TestMdlGainRatio:
    def test_informative_high(self):
        col, y = _bimodal()
        assert mdl_gain_ratio(col, y) > 0.5

    def test_noise_zero(self):
        rng = np.random.default_rng(4)
        col = rng.normal(size=300)
        y = rng.integers(0, 2, size=300)
        assert mdl_gain_ratio(col, y) == 0.0

    def test_empty(self):
        assert mdl_gain_ratio(np.array([]), np.array([])) == 0.0

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10**6), n=st.integers(10, 80))
    def test_bounded_property(self, seed, n):
        """Property: MDL gain ratio always lands in [0, 1]-ish bounds."""
        rng = np.random.default_rng(seed)
        col = rng.normal(size=n).round(1)
        y = rng.integers(0, 2, size=n)
        value = mdl_gain_ratio(col, y)
        assert 0.0 <= value <= 1.0 + 1e-9


class TestRankingCriteria:
    def test_mdl_criterion_agrees_on_top_feature(self, small_dataset):
        X, y = small_dataset
        names = [f"f{i}" for i in range(X.shape[1])]
        binary = rank_features(X, y, names, k=5, criterion="binary")
        mdl = rank_features(X, y, names, k=5, criterion="mdl")
        top_binary = {r.name for r in binary[:8]}
        top_mdl = {r.name for r in mdl[:8]}
        # The two criteria agree on the bulk of the top features.
        assert len(top_binary & top_mdl) >= 5

    def test_unknown_criterion(self, small_dataset):
        X, y = small_dataset
        names = [f"f{i}" for i in range(X.shape[1])]
        with pytest.raises(ValueError, match="unknown criterion"):
            rank_features(X, y, names, k=5, criterion="magic")


class TestDeepPartition:
    def test_nested_cuts_past_recursion_limit(self):
        """The work-stack partition survives deeply nested accepted cuts.

        Equal-width alternating-label blocks force MDL to peel one pure
        block per cut, nesting ``n_blocks`` partitions along one side —
        far past a recursive implementation's depth budget (proved by
        temporarily lowering the interpreter limit below the nesting).
        """
        import sys

        block, n_blocks = 16, 150
        n = block * n_blocks
        column = np.arange(n, dtype=np.float64)
        y = (np.arange(n) // block) % 2
        old_limit = sys.getrecursionlimit()
        try:
            sys.setrecursionlimit(90)
            cuts = mdl_cut_points(column, y)
        finally:
            sys.setrecursionlimit(old_limit)
        assert len(cuts) == n_blocks - 1
        assert cuts == sorted(cuts)
        bins = discretize(column, cuts)
        for i in range(n_blocks):
            assert len(set(bins[i * block:(i + 1) * block])) == 1
