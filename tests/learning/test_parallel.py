"""Differential tests for the n_jobs execution layer and deep trees.

The parallel pipeline's contract is *byte-identity*: any ``n_jobs``
value must produce exactly the results of the serial run, because all
per-item randomness is drawn up front from the master seed.  The deep
tree tests pin the recursion-free growth/serialization paths: a tree
deeper than the interpreter recursion limit must fit, pickle, save and
load.
"""

import pickle
import sys

import numpy as np
import pytest

from repro.exceptions import ReproError
from repro.features.extractor import extract_matrix
from repro.learning.crossval import cross_validate
from repro.learning.forest import EnsembleRandomForest
from repro.learning.persistence import (
    forest_from_dict,
    forest_to_dict,
    load_forest,
    save_forest,
)
from repro.learning.tree import DecisionTreeClassifier
from repro.parallel import parallel_map, resolve_n_jobs


def _square(x):
    return x * x


def _data(n=100, seed=0):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(-1.5, 1.0, size=(n // 2, 4))
    X1 = rng.normal(1.5, 1.0, size=(n // 2, 4))
    return np.vstack([X0, X1]), np.array([0] * (n // 2) + [1] * (n // 2))


def _chain_data(n):
    """Data whose optimal CART tree is a depth ``n - 1`` chain.

    With one strictly increasing feature and alternating labels, the
    highest-gain split always peels the single leftmost sample (a pure
    leaf) off an otherwise near-balanced remainder, so the tree grows
    one level per sample.
    """
    X = np.arange(n, dtype=np.float64).reshape(-1, 1)
    y = np.arange(n) % 2
    return X, y


class TestResolveNJobs:
    def test_none_is_serial(self):
        assert resolve_n_jobs(None) == 1

    def test_minus_one_is_all_cores(self):
        import os
        assert resolve_n_jobs(-1) == (os.cpu_count() or 1)

    def test_explicit_count(self):
        assert resolve_n_jobs(3) == 3

    def test_zero_rejected(self):
        with pytest.raises(ReproError, match="n_jobs"):
            resolve_n_jobs(0)


class TestParallelMap:
    def test_preserves_order(self):
        items = list(range(20))
        assert parallel_map(_square, items, n_jobs=4) == [i * i for i in items]

    def test_serial_fast_path(self):
        # n_jobs=1 must not require picklable functions.
        items = [1, 2, 3]
        assert parallel_map(lambda x: x + 1, items, n_jobs=1) == [2, 3, 4]

    def test_empty_input(self):
        assert parallel_map(_square, [], n_jobs=4) == []


class TestParallelDeterminism:
    def test_fit_byte_identical_to_serial(self):
        X, y = _data()
        serial = EnsembleRandomForest(n_trees=6, random_state=5).fit(X, y)
        par = EnsembleRandomForest(n_trees=6, random_state=5).fit(
            X, y, n_jobs=4
        )
        assert forest_to_dict(serial) == forest_to_dict(par)

    def test_constructor_n_jobs_equivalent(self):
        X, y = _data()
        serial = EnsembleRandomForest(n_trees=4, random_state=2).fit(X, y)
        par = EnsembleRandomForest(
            n_trees=4, random_state=2, n_jobs=2
        ).fit(X, y)
        assert forest_to_dict(serial) == forest_to_dict(par)

    def test_cross_validate_byte_identical_to_serial(self):
        X, y = _data()
        serial = cross_validate(X, y, k=4, seed=3)
        par = cross_validate(X, y, k=4, seed=3, n_jobs=4)
        assert serial.per_fold == par.per_fold

    def test_extract_matrix_parallel_matches(self, tiny_corpus):
        traces = tiny_corpus.traces[:8]
        X1, y1 = extract_matrix(traces)
        X2, y2 = extract_matrix(traces, n_jobs=2)
        assert np.array_equal(X1, X2)
        assert np.array_equal(y1, y2)


class TestDeepTrees:
    @pytest.fixture(scope="class")
    def deep_tree(self):
        n = sys.getrecursionlimit() + 100
        X, y = _chain_data(n)
        tree = DecisionTreeClassifier().fit(X, y)
        return tree, X, y

    def test_fit_beyond_recursion_limit(self, deep_tree):
        tree, X, y = deep_tree
        assert tree.depth > sys.getrecursionlimit()
        assert np.array_equal(tree.predict(X), y)

    def test_deep_tree_pickles(self, deep_tree):
        tree, X, _ = deep_tree
        clone = pickle.loads(pickle.dumps(tree))
        assert np.array_equal(clone.predict_proba(X), tree.predict_proba(X))

    def test_deep_forest_save_load(self, deep_tree, tmp_path):
        _, X, y = deep_tree
        forest = EnsembleRandomForest(
            n_trees=1, bootstrap=False, max_features=1, random_state=0
        ).fit(X, y)
        assert forest.trees_[0].depth > sys.getrecursionlimit()
        path = str(tmp_path / "deep.json")
        save_forest(forest, path)
        loaded = load_forest(path)
        assert np.array_equal(
            loaded.decision_scores(X), forest.decision_scores(X)
        )

    def test_deep_forest_dict_roundtrip(self, deep_tree):
        _, X, y = deep_tree
        forest = EnsembleRandomForest(
            n_trees=1, bootstrap=False, max_features=1, random_state=0
        ).fit(X, y)
        rebuilt = forest_from_dict(forest_to_dict(forest))
        assert np.array_equal(
            rebuilt.decision_scores(X), forest.decision_scores(X)
        )
