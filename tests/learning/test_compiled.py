"""Differential tests: compiled arena vs. object-tree traversal.

The compiled engine's contract is *byte-identical* output — not close,
identical — so every comparison here is ``np.array_equal``, never
``allclose``.  Inputs cover the adversarial corners named in ISSUE 4:
degenerate single-leaf trees, trees that saw fewer classes than the
forest, NaN/±inf feature values, and thresholds produced by the
midpoint clamp in ``tree.py``.
"""

import pickle

import numpy as np
import pytest

from repro.exceptions import LearningError
from repro.learning.compiled import CompiledForest, compile_forest
from repro.learning.forest import EnsembleRandomForest
from repro.learning.persistence import forest_from_dict, forest_to_dict
from repro.learning.tree import DecisionTreeClassifier


def _random_problem(seed, n=150, features=8):
    rng = np.random.default_rng(seed)
    X0 = rng.normal(loc=-0.6, size=(n // 2, features))
    X1 = rng.normal(loc=0.6, size=(n // 2, features))
    X = np.vstack([X0, X1])
    y = np.array([0] * (n // 2) + [1] * (n // 2))
    return X, y, rng


def _pair(seed, **kwargs):
    """The same forest fitted twice, once per engine (identical trees)."""
    X, y, rng = _random_problem(seed)
    compiled = EnsembleRandomForest(random_state=seed, engine="compiled",
                                    **kwargs).fit(X, y)
    objectish = EnsembleRandomForest(random_state=seed, engine="object",
                                     **kwargs).fit(X, y)
    probe = rng.normal(size=(64, X.shape[1])) * 2
    return compiled, objectish, X, probe


def _assert_identical(compiled, objectish, X):
    assert np.array_equal(compiled.predict_proba(X),
                          objectish.predict_proba(X))
    assert np.array_equal(compiled.predict(X), objectish.predict(X))
    assert np.array_equal(compiled.decision_scores(X),
                          objectish.decision_scores(X))


class TestDifferential:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_forests_average(self, seed):
        compiled, objectish, X, probe = _pair(seed, n_trees=7)
        _assert_identical(compiled, objectish, X)
        _assert_identical(compiled, objectish, probe)

    @pytest.mark.parametrize("seed", [0, 5])
    def test_random_forests_majority(self, seed):
        compiled, objectish, X, probe = _pair(
            seed, n_trees=9, voting="majority"
        )
        _assert_identical(compiled, objectish, X)
        _assert_identical(compiled, objectish, probe)

    def test_entropy_and_depth_limits(self):
        compiled, objectish, X, probe = _pair(
            11, n_trees=5, criterion="entropy", max_depth=3,
            min_samples_leaf=4,
        )
        _assert_identical(compiled, objectish, probe)

    def test_single_trees_match(self):
        X, y, rng = _random_problem(4)
        tree = DecisionTreeClassifier(random_state=4).fit(X, y)
        forest = EnsembleRandomForest(n_trees=1, bootstrap=False,
                                      random_state=4, engine="compiled")
        forest.fit(X, y)
        probe = rng.normal(size=(40, X.shape[1]))
        # A 1-tree no-bootstrap forest averages exactly one tree.
        assert np.array_equal(forest.trees_[0].predict_proba(probe),
                              forest.predict_proba(probe))

    def test_nan_and_inf_feature_values(self):
        compiled, objectish, X, _ = _pair(7, n_trees=6)
        probe = X[:8].copy()
        probe[0, 0] = np.nan
        probe[1, :] = np.nan
        probe[2, 3] = np.inf
        probe[3, :] = np.inf
        probe[4, 1] = -np.inf
        probe[5, :] = -np.inf
        _assert_identical(compiled, objectish, probe)

    def test_batched_rows_equal_single_rows(self):
        compiled, _, X, _ = _pair(9, n_trees=6)
        batch = compiled.decision_scores(X)
        singles = np.array([
            compiled.decision_scores(X[i:i + 1])[0] for i in range(len(X))
        ])
        assert np.array_equal(batch, singles)

    def test_empty_batch(self):
        compiled, objectish, X, _ = _pair(3, n_trees=3)
        empty = X[:0]
        assert compiled.predict_proba(empty).shape == (0, 2)
        assert np.array_equal(compiled.predict_proba(empty),
                              objectish.predict_proba(empty))


class TestDegenerate:
    def test_single_leaf_tree_forest(self):
        # Constant labels grow depth-0 trees: one leaf, no traversal.
        rng = np.random.default_rng(0)
        X = rng.normal(size=(20, 3))
        y = np.zeros(20)
        compiled = EnsembleRandomForest(n_trees=4, random_state=0,
                                        engine="compiled").fit(X, y)
        objectish = EnsembleRandomForest(n_trees=4, random_state=0,
                                         engine="object").fit(X, y)
        assert compiled._compiled.depth == 0
        _assert_identical(compiled, objectish, X)
        assert np.array_equal(compiled.decision_scores(X), np.zeros(20))

    def test_tree_with_fewer_classes_than_forest(self):
        # A degenerate bootstrap can hand a tree only one class; its
        # single proba column must scatter into the right forest column.
        X, y, _ = _random_problem(6)
        one_class = DecisionTreeClassifier(random_state=1).fit(
            X[y == 1], y[y == 1]
        )
        compiled = EnsembleRandomForest(n_trees=3, random_state=6,
                                        engine="compiled").fit(X, y)
        compiled.trees_[1] = one_class
        compiled.compile()  # in-place tree swap requires an explicit sync
        objectish = EnsembleRandomForest(n_trees=3, random_state=6,
                                         engine="object").fit(X, y)
        objectish.trees_[1] = one_class
        objectish._tree_cols = None
        _assert_identical(compiled, objectish, X)
        # The class-1-only tree contributes 1/3 to every class-1 score.
        assert compiled.decision_scores(X).min() >= 1.0 / 3.0

    def test_threshold_at_clamp_boundary(self):
        # Adjacent floats make the split midpoint round up to the upper
        # value; tree.py clamps the threshold down to the lower value so
        # `<=` keeps the split non-degenerate.  The compiled traversal
        # must reproduce the same branch on both sides of the clamp.
        low = 1.0
        high = np.nextafter(low, 2.0)
        X = np.array([[low], [low], [high], [high]])
        y = np.array([0, 0, 1, 1])
        tree = DecisionTreeClassifier().fit(X, y)
        assert tree._root.threshold == low  # the clamp fired
        compiled = EnsembleRandomForest(n_trees=2, bootstrap=False,
                                        max_features=1, random_state=0,
                                        engine="compiled").fit(X, y)
        objectish = EnsembleRandomForest(n_trees=2, bootstrap=False,
                                         max_features=1, random_state=0,
                                         engine="object").fit(X, y)
        probe = np.array([[low], [high],
                          [np.nextafter(low, 0.0)],
                          [np.nextafter(high, 2.0)]])
        _assert_identical(compiled, objectish, probe)
        assert np.array_equal(compiled.predict(probe),
                              np.array([0, 1, 0, 1]))

    def test_majority_ties_break_to_lowest_label(self):
        # A perfectly mixed leaf votes for the lowest class label, in
        # both engines (argmax ties resolve to the first index).
        X = np.zeros((4, 1))
        y = np.array([0, 0, 1, 1])
        for engine in ("compiled", "object"):
            forest = EnsembleRandomForest(
                n_trees=3, voting="majority", bootstrap=False,
                max_features=1, random_state=0, engine=engine,
            ).fit(X, y)
            assert np.array_equal(forest.predict(X), np.zeros(4))
            # Every tree's tied leaf votes class 0, unanimously.
            tiled = np.tile([1.0, 0.0], (4, 1))
            assert np.array_equal(forest.predict_proba(X), tiled)

    def test_tree_predict_ties_break_to_lowest_label(self):
        X = np.zeros((2, 1))
        y = np.array([3, 7])
        tree = DecisionTreeClassifier().fit(X, y)
        assert np.array_equal(tree.predict(X), np.array([3, 3]))


class TestLifecycle:
    def test_fit_autocompiles_and_refit_invalidates(self):
        X, y, rng = _random_problem(2)
        forest = EnsembleRandomForest(n_trees=3, random_state=2).fit(X, y)
        first = forest._compiled
        assert isinstance(first, CompiledForest)
        # Refit on different data must rebuild the arena (a stale arena
        # would silently score with the old trees).
        X2 = X + 5.0
        forest.fit(X2, y)
        assert forest._compiled is not first
        check = EnsembleRandomForest(n_trees=3, random_state=2,
                                     engine="object").fit(X2, y)
        assert np.array_equal(forest.decision_scores(X2),
                              check.decision_scores(X2))

    def test_stale_arena_guard_on_mutated_trees(self):
        X, y, _ = _random_problem(8)
        forest = EnsembleRandomForest(n_trees=4, random_state=8).fit(X, y)
        forest.trees_ = forest.trees_[:2]
        check = EnsembleRandomForest(n_trees=4, random_state=8,
                                     engine="object").fit(X, y)
        check.trees_ = check.trees_[:2]
        assert np.array_equal(forest.decision_scores(X),
                              check.decision_scores(X))

    def test_pickle_roundtrip_drops_and_rebuilds_arena(self):
        X, y, _ = _random_problem(5)
        forest = EnsembleRandomForest(n_trees=3, random_state=5).fit(X, y)
        expected = forest.decision_scores(X)
        clone = pickle.loads(pickle.dumps(forest))
        assert clone._compiled is None  # derived data is not shipped
        assert np.array_equal(clone.decision_scores(X), expected)

    def test_tree_columns_cached_until_refit(self):
        X, y, _ = _random_problem(1)
        forest = EnsembleRandomForest(n_trees=3, random_state=1,
                                      engine="object").fit(X, y)
        forest.predict_proba(X)
        first = forest._tree_cols
        assert first is not None
        forest.predict_proba(X)
        assert forest._tree_cols is first  # reused, not recomputed
        forest.fit(X, y)
        assert forest._tree_cols is not first

    def test_unknown_engine_rejected(self):
        with pytest.raises(LearningError, match="engine"):
            EnsembleRandomForest(engine="quantum")

    def test_compile_unfitted_rejected(self):
        with pytest.raises(LearningError, match="unfitted"):
            compile_forest(EnsembleRandomForest())


class TestPersistence:
    def _v1_payload(self, forest):
        """Re-encode a v2 payload in the version-1 nested format."""

        def nest(nodes, index):
            node = dict(nodes[index])
            if "proba" in node:
                return node
            node["left"] = nest(nodes, node["left"])
            node["right"] = nest(nodes, node["right"])
            return node

        payload = forest_to_dict(forest)
        payload["format_version"] = 1
        for tree in payload["trees"]:
            tree["root"] = nest(tree.pop("nodes"), 0)
        return payload

    def test_v2_payload_loads_compiled(self):
        X, y, _ = _random_problem(3)
        forest = EnsembleRandomForest(n_trees=3, random_state=3).fit(X, y)
        loaded = forest_from_dict(forest_to_dict(forest))
        assert isinstance(loaded._compiled, CompiledForest)
        assert np.array_equal(loaded.decision_scores(X),
                              forest.decision_scores(X))

    def test_v1_payload_loads_and_compiles(self):
        # Regression: the arena must build from the nested version-1
        # encoding too, not just the flat v2 node lists.
        X, y, _ = _random_problem(3)
        forest = EnsembleRandomForest(n_trees=3, random_state=3).fit(X, y)
        loaded = forest_from_dict(self._v1_payload(forest))
        assert isinstance(loaded._compiled, CompiledForest)
        _assert_identical(loaded, forest, X)
        loaded.engine = "object"
        assert np.array_equal(loaded.decision_scores(X),
                              forest.decision_scores(X))
