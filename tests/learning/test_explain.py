"""Forest decision-path explanations vs an object-tree oracle.

``CompiledForest.explain`` / ``EnsembleRandomForest.explain_row`` power
alert provenance; they must report exactly the leaves, votes, scores,
and per-feature split usage an explicit walk of the object trees finds.
"""

import numpy as np
import pytest

from repro.exceptions import LearningError
from repro.learning.forest import EnsembleRandomForest


def _walk_tree(node, row):
    """Oracle: explicit root-to-leaf walk of one object tree.

    Returns ``(leaf_proba, feature_counts_dict)`` using the same IEEE
    comparison as inference (``x <= threshold`` goes left, NaN right).
    """
    counts: dict[int, int] = {}
    while not node.is_leaf:
        counts[node.feature] = counts.get(node.feature, 0) + 1
        if row[node.feature] <= node.threshold:
            node = node.left
        else:
            node = node.right
    return node.proba, counts


def _oracle_explanation(forest, row):
    n_features = forest.trees_[0].n_features_
    votes, scores = [], []
    totals = np.zeros(n_features, dtype=np.int64)
    positive = np.flatnonzero(forest._classes == 1)
    column_label = None
    if positive.size:
        column_label = 1
    for index, tree in enumerate(forest.trees_):
        proba, counts = _walk_tree(tree._root, row)
        for feature, count in counts.items():
            totals[feature] += count
        # argmax over tree-local classes, ties to the lowest label.
        votes.append(int(tree._classes[int(np.argmax(proba))]))
        if column_label is not None:
            local = np.flatnonzero(tree._classes == column_label)
            scores.append(float(proba[local[0]]) if local.size else 0.0)
        else:
            scores.append(0.0)
    infectious = sum(1 for vote in votes if vote == 1)
    return {
        "tree_votes": tuple(votes),
        "tree_scores": tuple(scores),
        "vote_tally": (len(forest.trees_) - infectious, infectious),
        "feature_path_counts": tuple(int(c) for c in totals),
    }


class TestExplainRow:
    def test_matches_object_tree_oracle(self, trained_model, small_dataset):
        X, _ = small_dataset
        rng = np.random.default_rng(5)
        rows = rng.choice(len(X), size=min(25, len(X)), replace=False)
        for index in rows:
            row = X[index]
            explanation = trained_model.explain_row(row)
            assert explanation == _oracle_explanation(trained_model, row)

    def test_scores_average_to_decision_score(
        self, trained_model, small_dataset
    ):
        X, _ = small_dataset
        for row in X[:10]:
            explanation = trained_model.explain_row(row)
            expected = float(trained_model.decision_scores(row[None, :])[0])
            assert np.isclose(
                float(np.mean(explanation["tree_scores"])), expected
            )

    def test_object_engine_uses_same_arena_path(self, small_dataset):
        X, y = small_dataset
        forest = EnsembleRandomForest(n_trees=5, random_state=7,
                                      engine="object")
        forest.fit(X, y)
        explanation = forest.explain_row(X[0])
        assert explanation == _oracle_explanation(forest, X[0])

    def test_plain_python_values(self, trained_model, small_dataset):
        """Provenance pickles across worker processes — no numpy
        scalars may leak out of the explanation."""
        X, _ = small_dataset
        explanation = trained_model.explain_row(X[0])
        for vote in explanation["tree_votes"]:
            assert type(vote) is int
        for score in explanation["tree_scores"]:
            assert type(score) is float
        for count in explanation["feature_path_counts"]:
            assert type(count) is int
        assert all(type(v) is int for v in explanation["vote_tally"])

    def test_wrong_width_rejected(self, trained_model):
        with pytest.raises(LearningError):
            trained_model.explain_row(np.zeros(3))

    def test_unfitted_rejected(self):
        with pytest.raises(LearningError):
            EnsembleRandomForest(n_trees=2).explain_row(np.zeros(5))

    def test_nan_row_goes_right(self, small_dataset):
        """NaN compares False on every split — the all-NaN row must
        still land on leaves (the rightmost path), same as inference."""
        X, y = small_dataset
        forest = EnsembleRandomForest(n_trees=3, random_state=11)
        forest.fit(X, y)
        row = np.full(X.shape[1], np.nan)
        explanation = forest.explain_row(row)
        assert explanation == _oracle_explanation(forest, row)

    def test_explain_does_not_touch_scoring_counters(
        self, trained_model, small_dataset
    ):
        from repro.obs import MetricsRegistry, use_registry

        X, y = small_dataset
        registry = MetricsRegistry()
        with use_registry(registry):
            forest = EnsembleRandomForest(n_trees=3, random_state=13)
            forest.fit(X, y)
            forest.explain_row(X[0])
        counters = registry.snapshot()["counters"]
        assert not any(
            name.startswith("forest.rows_scored") for name in counters
        )
