"""Bench table4: regenerate the top-20 feature ranking (Table IV).

Reproduction contract: graph-centric features dominate the top-20
(paper: 15 of 20) and most of the top-20 are features the paper
introduces as novel (paper: 15).  Rank means ascend and the gain-ratio
column stays within [0, 1].
"""

from repro.experiments import table4
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_table4(benchmark, save_artifact):
    ranked = benchmark.pedantic(
        table4.run, args=(BENCH_SEED, BENCH_SCALE),
        kwargs={"k": 10, "top": 20}, rounds=1, iterations=1,
    )
    assert len(ranked) == 20

    graph_count = table4.graph_features_in_top(ranked)
    novel_count = table4.novel_features_in_top(ranked)
    # Paper: 15/20 graph features, 15/20 novel features.
    assert graph_count >= 11
    assert novel_count >= 11

    means = [r.rank_mean for r in ranked]
    assert means == sorted(means)
    for row in ranked:
        assert 0.0 <= row.gain_ratio_mean <= 1.0
        assert row.rank_std >= 0.0

    # The top-ranked feature is strongly informative.
    assert ranked[0].gain_ratio_mean > 0.25

    save_artifact("table4", table4.report(BENCH_SEED, BENCH_SCALE))
