"""Bench cs1: regenerate the forensic case study (Section VI-C).

Reproduction contract: the replayed streaming session carries 3,011
transactions and ~32 downloads; DynaMiner (redirect threshold 3) raises
around 5 alerts covering the infectious episodes; VirusTotal flags most
but not all alerted payloads at capture time; the content-borne PDF goes
0/56 at capture and >=3/56 after 11 days — DynaMiner's 11-day lead.
"""

from repro.experiments import case_study1
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_case_study1(benchmark, save_artifact):
    results = benchmark.pedantic(
        case_study1.run, args=(BENCH_SEED, BENCH_SCALE), rounds=1,
        iterations=1,
    )
    replay = results["replay"]

    assert replay.transactions == 3011          # paper: 3,011
    assert 20 <= results["downloads"] <= 32     # paper: 32
    assert results["infectious_episodes"] == 5  # paper: 5 alerts
    assert 3 <= replay.alert_count <= 8

    # VirusTotal at capture: flags some but not all (paper: 4 of 5).
    assert 1 <= results["vt_flagged_at_capture"] <= results["downloads"]

    # The 11-day story.
    pdf = results["pdf_story"]
    assert pdf is not None
    assert pdf["day0"] == 0    # 0/56 at capture
    assert pdf["day11"] >= 3   # 3/56 after 11 days

    save_artifact("case_study1",
                  case_study1.report(BENCH_SEED, BENCH_SCALE))
