"""Parallel offline-pipeline bench: ``n_jobs`` scaling end to end.

Stage 1 — per-trace feature extraction, 20-tree ERF fitting, 10-fold
cross-validation — used to be strictly serial pure Python, wasting all
but one core of the experiment box.  This bench runs the full offline
loop (extract + fit + CV) over a ~2000-trace corpus (at
``REPRO_SCALE=1.0``) twice, serial then process-parallel, asserts the
two runs are **byte-identical** (the determinism contract: every
per-trace/per-tree/per-fold seed is drawn up front from the master
seed), and records the wall-clock speedup trajectory.  The ≥2x speedup
floor is asserted only on machines with at least 4 cores; smaller
runners still exercise the pool and the identity contract.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.features.extractor import extract_matrix
from repro.learning.crossval import cross_validate
from repro.learning.forest import EnsembleRandomForest
from repro.learning.persistence import forest_to_dict
from repro.synthesis.corpus import ground_truth_corpus

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED

#: The ground-truth corpus carries ~1750 traces at scale 1.0; rescale so
#: a full-fidelity run (REPRO_SCALE=1.0) covers the 2000-trace target.
TARGET_TRACES = 2000
_PAPER_CORPUS = 1750


@pytest.fixture(scope="module")
def traces():
    corpus = ground_truth_corpus(
        seed=BENCH_SEED, scale=BENCH_SCALE * TARGET_TRACES / _PAPER_CORPUS
    )
    return corpus.traces


def _pipeline(traces, n_jobs):
    """One full offline pass: extract, fit the paper ERF, 10-fold CV."""
    X, y = extract_matrix(traces, n_jobs=n_jobs)
    model = EnsembleRandomForest(n_trees=20, random_state=BENCH_SEED)
    model.fit(X, y, n_jobs=n_jobs)
    cv = cross_validate(X, y, k=10, seed=BENCH_SEED, n_jobs=n_jobs)
    return X, y, model, cv


def test_parallel_pipeline_identical_and_faster(traces, save_artifact):
    cores = os.cpu_count() or 1
    # Exercise the process pool even on small boxes (the identity
    # contract must hold there too); scale workers with the hardware.
    jobs = max(2, min(4, cores))

    start = time.perf_counter()
    X_s, y_s, model_s, cv_s = _pipeline(traces, 1)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    X_p, y_p, model_p, cv_p = _pipeline(traces, jobs)
    parallel_s = time.perf_counter() - start

    # Byte-identity: the schedule must never perturb the results.
    assert np.array_equal(X_s, X_p)
    assert np.array_equal(y_s, y_p)
    assert forest_to_dict(model_s) == forest_to_dict(model_p)
    assert cv_s.per_fold == cv_p.per_fold

    speedup = serial_s / parallel_s if parallel_s else float("inf")
    lines = [
        "Parallel offline pipeline (extract + fit + 10-fold CV)",
        f"traces: {len(traces)} (scale {BENCH_SCALE:.2f}, "
        f"target {TARGET_TRACES} at 1.0)",
        f"cores: {cores}  n_jobs: {jobs}",
        f"serial:   {serial_s:8.2f} s",
        f"parallel: {parallel_s:8.2f} s",
        f"speedup:  {speedup:8.2f}x",
        "byte-identical: yes",
    ]
    save_artifact("parallel_fit", "\n".join(lines))

    if cores >= 4:
        assert speedup >= 2.0, (
            f"expected >= 2x on a {cores}-core box, got {speedup:.2f}x"
        )
