"""Bench table5: regenerate the independent validation vs VirusTotal.

Reproduction contract (Table V): DynaMiner classifies ~97% of unseen
infections and ~98% of benign correctly; the simulated VirusTotal
catches visibly fewer infections (~84%) and more benign FPs; DynaMiner's
infection-detection margin over VT is double-digit; some VT misses are
timeouts.
"""

import pytest

from repro.experiments import table5
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_table5(benchmark, save_artifact):
    results = benchmark.pedantic(
        table5.run, args=(BENCH_SEED, BENCH_SCALE), rounds=1, iterations=1,
    )
    dynaminer = results["dynaminer"]
    virustotal = results["virustotal"]

    # DynaMiner side (paper: 97.38% infections, 98.1% benign).
    assert dynaminer["infection_rate"] == pytest.approx(0.9738, abs=0.05)
    assert dynaminer["benign_rate"] == pytest.approx(0.981, abs=0.06)

    # VirusTotal side (paper: 84.3% infections, 94.0% benign).
    assert virustotal["infection_rate"] == pytest.approx(0.843, abs=0.08)
    assert virustotal["benign_rate"] > 0.88

    # Who wins, by roughly what factor: a double-digit-ish margin.
    margin = dynaminer["infection_rate"] - virustotal["infection_rate"]
    assert margin > 0.05  # paper: 11.5% overall-accuracy margin

    # Timeouts contribute to VT false negatives (paper: 110 of 1179).
    assert virustotal["timeouts"] >= 1

    save_artifact("table5", table5.report(BENCH_SEED, BENCH_SCALE))
