"""Shared benchmark configuration.

Each bench regenerates one paper artifact (table or figure), asserts its
reproduction contract (who wins, by roughly what factor), saves the
rendered artifact under ``benchmarks/out/``, and reports a timing via
pytest-benchmark.

``REPRO_SCALE`` (default 0.25 here) shrinks the corpora proportionally;
set ``REPRO_SCALE=1.0`` for a full-fidelity regeneration of the paper's
corpus sizes (980 + 770 ground truth, 7489 + 1500 validation).
"""

from __future__ import annotations

import os
import pathlib

import pytest

#: Bench corpus scale (fraction of the paper's corpus sizes).
BENCH_SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))
BENCH_SEED = 7

_OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def artifact_dir() -> pathlib.Path:
    """Directory collecting the rendered tables/figures."""
    _OUT_DIR.mkdir(exist_ok=True)
    return _OUT_DIR


@pytest.fixture(scope="session")
def save_artifact(artifact_dir):
    """Callable writing one rendered artifact to disk and stdout."""

    def _save(name: str, text: str) -> None:
        path = artifact_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return _save


@pytest.fixture(scope="session", autouse=True)
def _warm_shared_context():
    """Build the shared ground-truth corpus + features once per session."""
    from repro.experiments.context import cached_features

    cached_features(BENCH_SEED, BENCH_SCALE)
