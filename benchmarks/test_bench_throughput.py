"""Throughput benches: the operational cost of on-the-wire detection.

The paper argues DynaMiner "can be deployed at the network level for
real-time malware detection"; these benches put numbers on that claim
for this implementation: end-to-end stream throughput (transactions/s
through the full session-table + clue + classify pipeline), raw feature
extraction latency per WCG, and classifier scoring latency.

These are genuine pytest-benchmark timings (multiple rounds), unlike the
artifact benches which run their experiment once.
"""

import numpy as np
import pytest

from repro.core.builder import build_wcg
from repro.detection.clues import CluePolicy
from repro.detection.detector import OnTheWireDetector
from repro.experiments.context import (
    cached_ground_truth,
    trained_classifier,
)
from repro.features.extractor import FeatureExtractor
from repro.synthesis.casestudy import forensic_streaming_session
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


@pytest.fixture(scope="module")
def classifier():
    return trained_classifier(BENCH_SEED, BENCH_SCALE)


@pytest.fixture(scope="module")
def stream():
    return forensic_streaming_session(seed=2016).trace.transactions


def test_bench_detector_throughput(benchmark, classifier, stream):
    """Full pipeline: route + watch + clue + classify, per stream."""

    def _replay():
        detector = OnTheWireDetector(
            classifier, policy=CluePolicy(redirect_threshold=3)
        )
        detector.process_stream(stream)
        detector.finalize()
        return detector.transactions_seen

    seen = benchmark.pedantic(_replay, rounds=3, iterations=1)
    assert seen == len(stream)
    rate = seen / benchmark.stats.stats.mean
    print(f"\ndetector throughput: {rate:,.0f} transactions/s "
          f"over {seen} transactions")
    # Real-time viability: the paper's 48-h mini-enterprise averaged
    # well under 1 transaction/s; demand orders of magnitude of headroom
    # (measured ~1k txn/s on commodity hardware; assert conservatively
    # so slower CI boxes stay green).
    assert rate > 300


def test_bench_feature_extraction_latency(benchmark):
    """Per-WCG cost of extracting all 37 features."""
    corpus = cached_ground_truth(BENCH_SEED, BENCH_SCALE)
    wcgs = [build_wcg(t) for t in corpus.infections[:50]]
    extractor = FeatureExtractor()

    def _extract_all():
        return [extractor.extract(wcg) for wcg in wcgs]

    vectors = benchmark.pedantic(_extract_all, rounds=3, iterations=1)
    assert len(vectors) == len(wcgs)
    per_wcg = benchmark.stats.stats.mean / len(wcgs)
    print(f"\nfeature extraction: {per_wcg * 1000:.2f} ms per WCG")
    assert per_wcg < 0.1  # well under the inter-transaction budget


def test_bench_classifier_latency(benchmark, classifier):
    """Scoring latency for one feature vector (the per-update cost)."""
    rng = np.random.default_rng(0)
    batch = np.abs(rng.normal(size=(100, 37))) * 10

    def _score():
        return classifier.decision_scores(batch)

    scores = benchmark.pedantic(_score, rounds=5, iterations=2)
    assert scores.shape == (100,)
    per_vector = benchmark.stats.stats.mean / 100
    print(f"\nclassifier scoring: {per_vector * 1e6:.1f} us per WCG")
    assert per_vector < 0.01
