"""Tree-fit bench: presorted-partition engine vs the legacy grower.

Fits the paper's 20-tree ensemble on the **table1-scale** training
matrix (full ground-truth corpus plus clue-time prefixes — the fit
scale is pinned to 1.0 even under CI's shrunken ``REPRO_SCALE``, since
the corpus build costs only seconds) with both training engines, single
process, and asserts two contracts in the same run:

* **speedup** — the presort engine fits at least 5x faster than the
  legacy grower at ``max_features=None`` (every split scans every
  column, isolating the split-scan kernel the engine replaces).  The
  paper-default ``log2(F)+1`` subsampling is timed and reported
  alongside without a floor: per-node ``rng.choice`` draws — which the
  byte-identity contract forbids amortizing — dominate its profile.
* **identity** — speed must not buy drift: for both configurations the
  two engines' forests serialize to byte-equal model-format-v2
  payloads.

Timings are best-of-``BENCH_ROUNDS`` per engine; results land in
``benchmarks/out/BENCH_tree_fit.json`` (uploaded by CI).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.detection.training import training_matrix
from repro.learning.forest import EnsembleRandomForest, default_max_features
from repro.learning.persistence import forest_to_dict
from repro.synthesis.corpus import ground_truth_corpus

ROUNDS = max(1, int(os.environ.get("BENCH_ROUNDS", "3")))

#: The engines are compared on the paper-sized matrix regardless of the
#: CI smoke scale — the corpus + matrix build is cheap (~15 s) and a
#: toy matrix would measure dispatch overhead, not the split scan.
FIT_SCALE = max(BENCH_SCALE, 1.0)

N_TREES = 20


@pytest.fixture(scope="module")
def matrix():
    corpus = ground_truth_corpus(seed=BENCH_SEED, scale=FIT_SCALE)
    n_jobs = max(2, min(4, os.cpu_count() or 1))
    return training_matrix(corpus.traces, augment_prefixes=True,
                           n_jobs=n_jobs)


def _fit(X, y, engine, max_features):
    forest = EnsembleRandomForest(
        n_trees=N_TREES,
        max_features=max_features,
        random_state=BENCH_SEED,
        tree_engine=engine,
    )
    forest.fit(X, y)
    return forest


def _best_of(X, y, engine, max_features):
    best = float("inf")
    forest = None
    for _ in range(ROUNDS):
        started = time.perf_counter()
        forest = _fit(X, y, engine, max_features)
        best = min(best, time.perf_counter() - started)
    return best, forest


def test_bench_tree_fit(matrix, artifact_dir):
    X, y = matrix
    n_features = X.shape[1]
    paper_mf = default_max_features(n_features)
    # ``max_features == n_features`` scans every column with zero RNG
    # draws; the forest maps ``None`` to the paper's log2(F)+1 rule.
    configs = [("all_features", n_features), ("paper_subsample", paper_mf)]

    sections = {}
    for name, max_features in configs:
        legacy_s, legacy_forest = _best_of(X, y, "legacy", max_features)
        presort_s, presort_forest = _best_of(X, y, "presort", max_features)

        identical = forest_to_dict(legacy_forest) == forest_to_dict(
            presort_forest
        )
        assert identical, f"{name}: engines grew different forests"

        speedup = legacy_s / presort_s
        sections[name] = {
            "max_features": max_features,
            "legacy_seconds": legacy_s,
            "presort_seconds": presort_s,
            "speedup": speedup,
            "identical": identical,
        }
        print(f"\n{name} (max_features={max_features}): "
              f"legacy {legacy_s * 1e3:.0f} ms, "
              f"presort {presort_s * 1e3:.0f} ms -> {speedup:.2f}x, "
              f"byte-identical forests")

    assert sections["all_features"]["speedup"] >= 5.0, (
        "expected the presort engine >= 5x over legacy at "
        f"max_features=None, got "
        f"{sections['all_features']['speedup']:.2f}x"
    )

    path = artifact_dir / "BENCH_tree_fit.json"
    path.write_text(json.dumps({
        "schema": "bench.tree_fit.v1",
        "seed": BENCH_SEED,
        "fit_scale": FIT_SCALE,
        "rows": int(X.shape[0]),
        "features": int(X.shape[1]),
        "n_trees": N_TREES,
        "rounds": ROUNDS,
        **sections,
    }, indent=2) + "\n")
    print(f"[saved to {path}]")
