"""Bench families: leave-one-family-out generalization (extension).

Reproduction contract (implied by the paper's cross-family training
set): the WCG features capture infection *dynamics*, not family
signatures, so a classifier that never saw a family still detects most
of its episodes.  The weakest held-out families should be the smallest
strata (least dynamics diversity in training), not the largest.
"""

import numpy as np

from repro.experiments import families_breakdown
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_families(benchmark, save_artifact):
    results = benchmark.pedantic(
        families_breakdown.run, args=(BENCH_SEED, BENCH_SCALE),
        rounds=1, iterations=1,
    )
    assert len(results) == 10

    rates = {family: m["tpr"] for family, m in results.items()}
    episode_weights = {family: m["episodes"] for family, m in results.items()}
    weighted_tpr = (
        sum(rates[f] * episode_weights[f] for f in rates)
        / sum(episode_weights.values())
    )
    # Dynamics generalize across kits: the weighted unseen-family TPR
    # stays near the in-distribution headline.
    assert weighted_tpr > 0.85
    # The largest family (Angler) is well covered by the others' shared
    # dynamics.
    assert rates["Angler"] > 0.85
    # Every family is at least half-detectable blind.
    assert min(rates.values()) >= 0.5

    save_artifact("families",
                  families_breakdown.report(BENCH_SEED, BENCH_SCALE))
