"""Bench table6: regenerate the live mini-enterprise case study.

Reproduction contract (Table VI): three monitored hosts; ~62 downloads
with the per-host payload mix; DynaMiner raises ~8 alerts distributed
4/3/1 across Windows/Ubuntu/MacOS; the two content-borne PDFs on the
Windows host are flagged by VirusTotal but not by DynaMiner (its
expected payload-agnostic miss).
"""

from repro.experiments import table6
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_table6(benchmark, save_artifact):
    results = benchmark.pedantic(
        table6.run, args=(BENCH_SEED, BENCH_SCALE), rounds=1, iterations=1,
    )
    alerts = results["per_host_alerts"]

    # Paper: 62 downloads; ours tracks the same mix.
    assert 40 <= results["total_downloads"] <= 75
    # Paper: 8 alerts total, 4 Windows / 3 Ubuntu / 1 MacOS.  Our
    # reproduction carries a documented benign-webmail false-alert
    # residue (EXPERIMENTS.md, deviation 4), so the contract is: within
    # 2x of the paper's count, with the per-host ordering preserved.
    assert 6 <= results["total_alerts"] <= 16
    assert alerts["win-host"] >= alerts["ubuntu-host"] >= \
        alerts["macos-host"]
    assert alerts["macos-host"] >= 1

    # VirusTotal flags the infectious downloads plus the content-borne
    # PDFs DynaMiner cannot see into (paper: 8 + 2).
    assert results["vt_flagged"] >= results["session"].infectious_episodes
    assert results["content_pdf_flagged_by_vt"] >= 1

    save_artifact("table6", table6.report(BENCH_SEED, BENCH_SCALE))
