"""Bench latency: time-to-alert across the infection corpus.

Reproduction contract (the on-the-wire claim, quantified): the detector
alerts on the large majority of non-stealth episodes, most alerts fire
*mid-conversation* (before the episode's final transaction), and the
median alert lands within the episode's machine-paced lifetime — i.e.
in time to terminate the session, which is what Section V-B's
"the corresponding session is terminated" requires.
"""

from repro.detection.latency import latency_summary, measure_latency
from repro.experiments.context import cached_ground_truth, trained_classifier
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_detection_latency(benchmark, save_artifact):
    classifier = trained_classifier(BENCH_SEED, BENCH_SCALE)
    corpus = cached_ground_truth(BENCH_SEED, BENCH_SCALE)
    episodes = [
        t for t in corpus.infections if not t.meta.get("stealth")
    ][:120]

    latencies = benchmark.pedantic(
        measure_latency, args=(classifier, episodes), rounds=1, iterations=1,
    )
    summary = latency_summary(latencies)

    assert summary["detection_rate"] > 0.9
    assert summary["mid_stream_fraction"] > 0.5
    # Median alert within the average episode lifetime (~70 s measured).
    assert summary["median_seconds"] < 120.0

    lines = ["Detection latency (time-to-alert) over "
             f"{int(summary['episodes'])} infection episodes:"]
    for key in ("detection_rate", "median_seconds", "p90_seconds",
                "median_progress", "mid_stream_fraction"):
        lines.append(f"  {key:20s} = {summary[key]:.3f}")
    save_artifact("latency", "\n".join(lines))
