"""Bench table3: regenerate the feature-group ablation (Table III).

Reproduction contract: the All-features classifier dominates both
subsets on F-score and lands near the paper's headline operating point
(TPR 0.973 / FPR 0.015); graph features alone remain a strong
classifier (paper: 0.958 / 0.059); dropping graph features costs
accuracy.  Known deviation: our synthetic non-graph features are
stronger than the paper's (see EXPERIMENTS.md).
"""

import pytest

from repro.experiments import table3
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_table3(benchmark, save_artifact):
    results = benchmark.pedantic(
        table3.run, args=(BENCH_SEED, BENCH_SCALE), kwargs={"k": 10},
        rounds=1, iterations=1,
    )
    all_features = results["All"]
    graph_only = results["GFs"]
    no_graph = results["HLFs+HFs+TFs"]

    # Headline operating point (paper: TPR 0.973, FPR 0.015).
    assert all_features["tpr"] == pytest.approx(0.973, abs=0.04)
    assert all_features["fpr"] <= 0.05
    assert all_features["roc_area"] > 0.97  # paper: 0.978

    # Ablation ordering: All wins on F-score; both subsets lose.
    assert all_features["f_score"] >= graph_only["f_score"]
    assert all_features["f_score"] >= no_graph["f_score"]
    # Combining features drives FPR down (paper: 0.059 -> 0.015).
    assert all_features["fpr"] <= graph_only["fpr"]
    # Graph features alone remain strong (paper: TPR 0.958).
    assert graph_only["tpr"] > 0.88

    save_artifact("table3", table3.report(BENCH_SEED, BENCH_SCALE))
