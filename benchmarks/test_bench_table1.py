"""Bench table1: regenerate Table I (ground-truth dataset statistics).

Reproduction contract: 11 rows (benign + 10 families); infection rows
average more hosts and redirects than the benign row; ransomware
payloads appear only in infection rows; post-download call-backs in
~92% of infections; WCG lifetimes within the 0.5-4061 s band.
"""

from repro.experiments import table1
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_table1(benchmark, save_artifact):
    results = benchmark.pedantic(
        table1.run, args=(BENCH_SEED, BENCH_SCALE), rounds=1, iterations=1
    )

    rows = results["rows"]
    assert len(rows) == 11
    benign = rows[0]
    infection_rows = rows[1:]

    weighted_hosts = sum(r.hosts_avg * r.n_traces for r in infection_rows)
    weighted_hosts /= sum(r.n_traces for r in infection_rows)
    assert weighted_hosts > benign.hosts_avg

    weighted_redirects = sum(
        r.redirects_avg * r.n_traces for r in infection_rows
    ) / sum(r.n_traces for r in infection_rows)
    assert weighted_redirects > benign.redirects_avg

    assert benign.payload_counts.get("crypt", 0) == 0
    assert sum(r.payload_counts.get("crypt", 0) for r in infection_rows) > 0

    assert 0.80 <= results["callback_prevalence"] <= 1.0  # paper: 91.9%
    props = results["global"]
    assert props.lifetime_min >= 0.4
    assert props.lifetime_max <= 4061.0
    assert props.nodes_min >= 2

    save_artifact("table1", table1.report(BENCH_SEED, BENCH_SCALE))
