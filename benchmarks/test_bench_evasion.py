"""Bench evasion: measure the Section VII adversarial predictions.

Reproduction contract: baseline episodes are detected at the headline
rate; cloaking any single dynamic (redirects, post-download call-backs,
payload type) costs only a few points — "the prediction score averaging
... reduces the variance" keeps partial evidence decisive; cloaking
everything at once (full stealth, approximating fileless infection)
produces the largest drop — "DynaMiner may not be able to detect as the
resulting WCG will miss the most revealing features."
"""

from repro.experiments import evasion
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_evasion(benchmark, save_artifact):
    results = benchmark.pedantic(
        evasion.run, args=(BENCH_SEED, BENCH_SCALE),
        kwargs={"episodes_per_mode": 60}, rounds=1, iterations=1,
    )
    baseline = results["baseline"]
    assert baseline["detection_rate"] > 0.9
    assert baseline["mean_score"] > 0.8

    # Single-dynamic cloaks: bounded degradation (mean score is the
    # robust signal — thresholded rates swing near the cut).
    for mode in ("cloaked-redirects", "no-post-download",
                 "compressed-payload"):
        assert results[mode]["mean_score"] > 0.6, mode

    # Full stealth is the most effective evasion by a wide margin.
    stealth_score = results["full-stealth"]["mean_score"]
    assert stealth_score == min(m["mean_score"] for m in results.values())
    assert stealth_score < baseline["mean_score"] - 0.25

    save_artifact("evasion", evasion.report(BENCH_SEED, BENCH_SCALE))
