"""Forest-inference scaling bench: compiled arena vs. object trees.

The compiled engine (`repro.learning.compiled`) flattens every fitted
tree into struct-of-arrays form, stacks a forest's trees into one arena,
and traverses level-wise with vectorized index stepping — O(depth) numpy
ops per batch instead of O(rows x nodes) Python dispatch.  Its contract
is *byte-identical* output to the object-tree walk (pinned per-corner in
``tests/learning/test_compiled.py``); this bench pins the point of the
exercise — the speedup — so inference scaling regressions fail the PR:

* a 10k-row batch through the paper-default forest (N_t=20) must score
  at least 10x faster compiled than object (measured ~14x);
* single-row scoring (the per-update on-the-wire cost) must not regress
  versus the object walk;
* the detector end to end — micro-batched scoring on the compiled
  engine vs. per-transaction scoring on object trees — must be faster
  on a classification-bound multi-client stream (eight watched clients
  under sustained classifier scrutiny), with identical verdict counts.

Every timing is best-of-N (``BENCH_ROUNDS``, floored at 3): ratio
floors compare *capabilities*, and one descheduled round would flake
them.
"""

import os
import time

import numpy as np
import pytest

from repro.detection.clues import CluePolicy
from repro.detection.detector import DetectorConfig, OnTheWireDetector
from repro.experiments.context import trained_classifier
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from tests.conftest import make_txn

#: Best-of-N rounds; floored at 3 so single-round CI smoke still takes
#: a defensible minimum (one noisy round would flake the ratio floors).
ROUNDS = max(3, int(os.environ.get("BENCH_ROUNDS", "5")))


@pytest.fixture(scope="module")
def classifier():
    return trained_classifier(BENCH_SEED, BENCH_SCALE)


@pytest.fixture(scope="module")
def probe():
    rng = np.random.default_rng(41)
    return np.abs(rng.normal(size=(10_000, 37))) * 10


def _suspicious_client(client: str, offset: float, count: int = 150):
    """One watched client: a referrer-linked 3-hop redirect chain into a
    risky (but non-exploit) archive download fires the clue, then bounded
    chatter keeps the watch under classifier scrutiny."""
    chain = ["hop-a.example", "hop-b.example", "hop-c.example",
             "land.example"]
    txns = []
    for hop in range(3):
        txns.append(make_txn(
            host=chain[hop], uri="/r", ts=100.0 + offset + hop * 0.02,
            client=client, status=302, content_type="",
            referrer=f"http://{chain[hop - 1]}/r" if hop else "",
            extra_res_headers={"Location": f"http://{chain[hop + 1]}/r"},
        ))
    txns.append(make_txn(
        host="land.example", uri="/bundle.zip", ts=100.07 + offset,
        client=client, content_type="application/zip",
        referrer="http://hop-c.example/r",
    ))
    hosts = [f"asset-{index}.example" for index in range(8)]
    for index in range(count - len(txns)):
        txns.append(make_txn(
            host=hosts[index % len(hosts)], uri=f"/a/{index % 97}",
            ts=100.2 + offset + index * 0.05, client=client,
            referrer="http://land.example/bundle.zip",
        ))
    return txns


@pytest.fixture(scope="module")
def stream():
    """Eight watched clients interleaved at sub-transaction offsets: the
    busy-tap shape where a decoder batch mixes clients, so deferred
    classifications coalesce into full-width matrix calls."""
    merged = []
    for index in range(8):
        merged.extend(_suspicious_client(f"client-{index}",
                                         offset=index * 0.005))
    merged.sort(key=lambda t: t.request.timestamp)
    return merged


def _timed(fn, rounds):
    best, result = float("inf"), None
    for _ in range(rounds):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _with_engine(classifier, engine, fn):
    previous = classifier.engine
    classifier.engine = engine
    try:
        return fn()
    finally:
        classifier.engine = previous


def test_bench_batch_inference(benchmark, classifier, probe):
    """10k-row ``predict_proba``: the offline / cross-validation shape."""
    compiled_proba = benchmark.pedantic(
        lambda: _with_engine(classifier, "compiled",
                             lambda: classifier.predict_proba(probe)),
        rounds=ROUNDS, iterations=1, warmup_rounds=1,
    )
    compiled_time = benchmark.stats.stats.min
    object_time, object_proba = _timed(
        lambda: _with_engine(classifier, "object",
                             lambda: classifier.predict_proba(probe)),
        ROUNDS,
    )
    # Speed must not buy drift: the engines are bit-for-bit equal.
    assert np.array_equal(compiled_proba, object_proba)

    speedup = object_time / compiled_time
    print(f"\nbatch inference (10k rows, {len(classifier.trees_)} trees): "
          f"compiled {compiled_time * 1e3:.1f} ms, "
          f"object {object_time * 1e3:.1f} ms ({speedup:.1f}x)")
    # The acceptance bar from ISSUE 4 (measured ~14x; asserted at the
    # stated floor).
    assert speedup >= 10


def test_bench_single_row_latency(classifier, probe):
    """One-row ``decision_scores``: the per-update on-the-wire cost."""
    row = probe[:1]
    rounds = max(200, ROUNDS * 100)
    compiled_time, compiled_score = _timed(
        lambda: _with_engine(classifier, "compiled",
                             lambda: classifier.decision_scores(row)),
        rounds,
    )
    object_time, object_score = _timed(
        lambda: _with_engine(classifier, "object",
                             lambda: classifier.decision_scores(row)),
        rounds,
    )
    assert np.array_equal(compiled_score, object_score)
    print(f"\nsingle-row scoring: compiled {compiled_time * 1e6:.0f} us, "
          f"object {object_time * 1e6:.0f} us")
    # The vectorized path must not trade away the latency floor the
    # live deployment depends on (generous bound: CI boxes are noisy).
    assert compiled_time < object_time * 2


def test_bench_detector_end_to_end(classifier, stream):
    """Micro-batched + compiled vs. per-transaction + object trees.

    The config pins the classification-bound operating point: re-score
    every watch update (``reclassify_interval=1``) and never terminate
    the watches (a threshold no probability reaches), so all eight
    clients stay under scrutiny for the whole stream and the scoring
    hot path — not watch churn — is what gets timed.  Alert/cooldown
    equivalence under batching is pinned separately, on alerting
    streams, in ``tests/detection/test_batch_scoring.py``.
    """
    config = DetectorConfig(alert_threshold=2.0, reclassify_interval=1)

    def _replay(engine, chunk):
        def _run():
            detector = OnTheWireDetector(
                classifier, policy=CluePolicy(redirect_threshold=3),
                config=config,
            )
            if chunk is None:
                for txn in stream:
                    detector.process(txn)
            else:
                for start in range(0, len(stream), chunk):
                    detector.process_batch(stream[start:start + chunk])
            detector.finalize()
            return detector

        return _timed(lambda: _with_engine(classifier, engine, _run),
                      ROUNDS)

    batched_time, batched = _replay("compiled", 64)
    sequential_time, sequential = _replay("object", None)

    # Batching must not change what the detector *does* — only when the
    # classifier runs.
    assert batched.classifications == sequential.classifications
    assert batched.classifications > 500  # non-vacuous: scoring-bound
    assert batched.alerts == sequential.alerts

    rate = len(stream) / batched_time
    speedup = sequential_time / batched_time
    print(f"\ndetector end to end: batched+compiled "
          f"{batched_time * 1e3:.1f} ms, sequential+object "
          f"{sequential_time * 1e3:.1f} ms ({speedup:.2f}x, "
          f"{rate:,.0f} txn/s over {len(stream)} transactions, "
          f"{batched.classifications} classifications)")
    # The classifier is one cost among several (routing, WCG upkeep,
    # feature extraction), so the end-to-end win is bounded by its
    # share; measured ~1.25x, asserted with CI-noise headroom.
    assert speedup >= 1.1


def test_forest_inference_telemetry_artifact(classifier, probe, artifact_dir):
    """Companion (untimed) run with metrics on: scoring volume and batch
    shape land in the registry and ship as a CI artifact.  The timed
    benches above stay metrics-off."""
    from repro.obs import MetricsRegistry, PipelineStatsReporter, use_registry

    registry = MetricsRegistry()
    with use_registry(registry):
        _with_engine(classifier, "compiled",
                     lambda: classifier.predict_proba(probe))
        for start in range(0, 256, 64):
            _with_engine(
                classifier, "compiled",
                lambda s=start: classifier.decision_scores(probe[s:s + 64]),
            )
        path = artifact_dir / "forest_inference_stats.jsonl"
        reporter = PipelineStatsReporter(registry=registry, out=str(path))
        snapshot = reporter.finalize()

    counters = snapshot["counters"]
    assert counters["forest.rows_scored.compiled"] == len(probe) + 256
    batch_rows = snapshot["histograms"]["forest.batch_rows"]
    assert batch_rows["count"] == 5  # one 10k batch + four 64-row batches
    assert batch_rows["max"] == len(probe)
    assert batch_rows["p50"] == 64
    print(f"\nrows scored (compiled): "
          f"{counters['forest.rows_scored.compiled']}, "
          f"batch sizes p50 {batch_rows['p50']:.0f} / max "
          f"{batch_rows['max']:.0f}\n[saved to {path}]")
