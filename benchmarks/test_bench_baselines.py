"""Bench baselines: DynaMiner vs prior-work abstractions (Section VIII).

Reproduction contract: under the same ERF and CV protocol, the
comprehensive WCG abstraction beats both single-aspect abstractions —
the Kwon-style downloader graph [12] and SpiderWeb/Mekky-style
redirection chains [25, 14] — on F-score, and achieves the lowest FPR.
This quantifies the paper's related-work positioning ("richer
abstraction and comprehensive analytics of WCGs").
"""

from repro.experiments import baselines
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_baselines(benchmark, save_artifact):
    results = benchmark.pedantic(
        baselines.run, args=(BENCH_SEED, BENCH_SCALE), kwargs={"k": 10},
        rounds=1, iterations=1,
    )
    wcg = results["DynaMiner (WCG, 37 features)"]
    downloader = results["Downloader graph [12]"]
    redirect = results["Redirection chains [25,14]"]

    assert wcg["f_score"] > downloader["f_score"]
    assert wcg["f_score"] > redirect["f_score"]
    assert wcg["fpr"] <= min(downloader["fpr"], redirect["fpr"])
    # Single-aspect abstractions are still decent (the paper never
    # claims they fail; it claims comprehensiveness adds on top).
    assert downloader["roc_area"] > 0.85
    assert redirect["roc_area"] > 0.85

    save_artifact("baselines", baselines.report(BENCH_SEED, BENCH_SCALE))
