"""Bench fig7/8/9: regenerate the graph-feature distributions.

Reproduction contract: the per-class histograms of average node
connectivity (Fig. 7), betweenness centrality (Fig. 8), and closeness
centrality (Fig. 9) separate — infection mass sits at lower values of
each centrality, confirming "the discriminating power of our graph
features" (Section IV-A).
"""

import numpy as np

from repro.experiments import figures
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def _histogram_mean(counts: np.ndarray, edges: np.ndarray) -> float:
    centers = (edges[:-1] + edges[1:]) / 2.0
    total = counts.sum()
    return float((counts * centers).sum() / total) if total else 0.0


def test_bench_fig7_8_9(benchmark, save_artifact):
    data = benchmark.pedantic(
        figures.run_fig7_8_9, args=(BENCH_SEED, BENCH_SCALE), rounds=1,
        iterations=1,
    )
    lines = []
    for fig_number, feature in zip((7, 8, 9), figures.FIG789_FEATURES):
        hist = data[feature]
        inf_counts, edges = hist["infection"]
        ben_counts, _ = hist["benign"]
        inf_mean = _histogram_mean(inf_counts, edges)
        ben_mean = _histogram_mean(ben_counts, edges)
        # All three are centralities/connectivities that run LOWER for
        # infection WCGs (sparse chains vs dense benign stars).
        assert inf_mean < ben_mean, feature
        lines.append(
            f"Fig. {fig_number} ({feature}): infection mean {inf_mean:.4f}"
            f" vs benign mean {ben_mean:.4f}"
        )
        lines.append(
            "  bins       " + " ".join(f"{e:7.3f}" for e in edges[:-1])
        )
        lines.append(
            "  infection  " + " ".join(f"{c:7d}" for c in inf_counts)
        )
        lines.append(
            "  benign     " + " ".join(f"{c:7d}" for c in ben_counts)
        )
    save_artifact("fig7_8_9", "\n".join(lines))
