"""Bench fig4: regenerate the HTTP-header element comparison.

Reproduction contract (Section II-D): infections average visibly more
GET and POST requests, redirection chains, and 40x responses than
benign traces; a typical infection has at least one redirect chain
while a typical benign trace has none.
"""

from repro.experiments import figures
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_fig4(benchmark, save_artifact):
    data = benchmark.pedantic(
        figures.run_fig4, args=(BENCH_SEED, BENCH_SCALE), rounds=1,
        iterations=1,
    )

    def infection(element):
        return data[element]["infection"]

    def benign(element):
        return data[element]["benign"]

    assert infection("get") > benign("get")
    assert infection("post") > benign("post")
    assert infection("http_40x") > 2 * benign("http_40x")
    assert infection("redirect_chains") > 3 * benign("redirect_chains")
    # A typical infection has a redirect chain; a typical benign none.
    assert infection("redirect_chains") >= 0.5
    assert benign("redirect_chains") < 0.5

    save_artifact("fig4", figures.report_fig4(BENCH_SEED, BENCH_SCALE))
