"""Live-decoder scaling bench: incremental parsing vs. full re-parse.

The on-the-wire decoder used to re-run the HTTP parser over a
connection's *entire* reassembled buffer on every packet delivery —
quadratic in connection size, so one large persistent connection could
stall the tap.  The incremental :class:`LiveDecoder` examines each byte
once.  This bench feeds a single 1,000-transaction persistent
connection packet by packet through both algorithms and asserts the
incremental path is at least an order of magnitude faster end to end,
and that its per-delivery cost stays flat as the connection grows.
"""

import time

import pytest

from repro.core.model import Trace
from repro.detection.live import LiveDecoder
from repro.exceptions import HttpParseError
from repro.net.flows import (
    _segments_of,
    packets_from_trace,
    transactions_from_packets,
)
from repro.net.http1 import parse_requests, parse_responses
from repro.net.pcap import LINKTYPE_ETHERNET
from repro.net.reassembly import TcpReassembler

TRANSACTIONS = 1000


class _ReparseDecoder:
    """The seed algorithm: re-parse the whole stream on every delivery."""

    def __init__(self):
        self._reassembler = TcpReassembler()
        self._emitted: dict = {}
        self._not_http: set = set()

    def feed(self, packet) -> int:
        fresh = 0
        for ts, src, dst, segment in _segments_of([packet], LINKTYPE_ETHERNET):
            stream = self._reassembler.feed(ts, src, dst, segment)
            fresh += self._drain(stream, final=stream.closed)
        return fresh

    def flush(self) -> int:
        return sum(
            self._drain(stream, final=True)
            for stream in self._reassembler.streams()
        )

    def _drain(self, stream, final: bool) -> int:
        key = stream.key
        if key in self._not_http or stream.client is None:
            return 0
        try:
            requests = parse_requests(stream.client_data)
            responses = parse_responses(
                stream.server_data, closed=True,
                request_methods=[r.method for r in requests],
            )
        except HttpParseError:
            self._not_http.add(key)
            return 0
        complete = len(responses) if not final else len(requests)
        already = self._emitted.get(key, 0)
        fresh = max(0, complete - already)
        if fresh:
            self._emitted[key] = already + fresh
        return fresh


@pytest.fixture(scope="module")
def capture():
    """One persistent connection carrying 1,000 transactions."""
    trace = Trace(transactions=[
        make_bulk_txn(index) for index in range(TRANSACTIONS)
    ])
    packets, book = packets_from_trace(trace)
    packets.sort(key=lambda p: p.timestamp)
    assert len(transactions_from_packets(packets, book=book)) == TRANSACTIONS
    return packets, book


def make_bulk_txn(index: int):
    from tests.conftest import make_txn

    return make_txn(
        host="bulk.example", uri=f"/asset/{index}", ts=100.0 + index * 0.01,
        client="workstation", body=b"x" * 120,
    )


def _run_incremental(packets, book) -> tuple[int, list[float]]:
    decoder = LiveDecoder(book=book)
    emitted = 0
    feed_times = []
    for packet in packets:
        started = time.perf_counter()
        emitted += len(decoder.feed(packet))
        feed_times.append(time.perf_counter() - started)
    emitted += len(decoder.flush())
    return emitted, feed_times


def test_bench_live_decoder_scaling(benchmark, capture):
    packets, book = capture

    emitted, feed_times = benchmark.pedantic(
        lambda: _run_incremental(packets, book), rounds=3, iterations=1
    )
    assert emitted == TRANSACTIONS
    incremental_total = benchmark.stats.stats.mean

    reparse = _ReparseDecoder()
    started = time.perf_counter()
    reparse_emitted = sum(reparse.feed(packet) for packet in packets)
    reparse_emitted += reparse.flush()
    reparse_total = time.perf_counter() - started
    assert reparse_emitted == TRANSACTIONS

    speedup = reparse_total / incremental_total
    print(f"\nincremental: {incremental_total * 1e3:.1f} ms, "
          f"re-parse: {reparse_total * 1e3:.1f} ms "
          f"({speedup:.0f}x) over {len(packets)} packets")
    # The acceptance bar: an order of magnitude on a 1k-transaction
    # single connection (measured far higher; asserted conservatively).
    assert speedup >= 10

    # Per-delivery cost must not grow with bytes already parsed: the
    # last decile of deliveries may not cost an order of magnitude more
    # than the first (each decile aggregates hundreds of feeds, so the
    # comparison is stable against timer noise).
    decile = max(1, len(feed_times) // 10)
    first, last = sum(feed_times[:decile]), sum(feed_times[-decile:])
    print(f"per-feed cost: first decile {first * 1e6:.0f} us, "
          f"last decile {last * 1e6:.0f} us")
    assert last < first * 10


def test_live_decoder_telemetry_artifact(capture, artifact_dir):
    """Companion (untimed) run with metrics on: the decoder's counters
    must agree with the capture's ground truth, and the snapshot ships
    as a CI artifact.  The timed bench above stays metrics-off."""
    from repro.obs import MetricsRegistry, PipelineStatsReporter, use_registry

    packets, book = capture
    registry = MetricsRegistry()
    with use_registry(registry):
        decoder = LiveDecoder(book=book)
        emitted = 0
        for packet in packets:
            emitted += len(decoder.feed(packet))
        emitted += len(decoder.flush())
        path = artifact_dir / "live_decoder_stats.jsonl"
        reporter = PipelineStatsReporter(registry=registry, out=str(path))
        snapshot = reporter.finalize()

    assert emitted == TRANSACTIONS
    counters = snapshot["counters"]
    assert counters["decode.packets"] == len(packets)
    assert counters["http.transactions"] == TRANSACTIONS
    assert counters["http.requests"] == TRANSACTIONS
    assert counters["reassembly.segments"] > 0
    feed_span = snapshot["histograms"]["span.decode.feed"]
    assert feed_span["count"] == len(packets)
    print(f"\nper-feed decode span: p50 {feed_span['p50'] * 1e6:.1f} us, "
          f"p99 {feed_span['p99'] * 1e6:.1f} us over {len(packets)} packets"
          f"\n[saved to {path}]")
