"""Bench fig1/fig2: regenerate the enticement distributions.

Reproduction contract (Figure 1): search engines dominate (Google >
Bing > everything else), concealed referrers are a double-digit share,
compromised sites are a double-digit share, social networks are <2%.
Figure 2: per-family distributions exist for all 10 families and search
remains the top strategy for the big families.
"""

import pytest

from repro.experiments import figures
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_fig1(benchmark, save_artifact):
    dist = benchmark.pedantic(
        figures.run_fig1, args=(BENCH_SEED, BENCH_SCALE), rounds=1,
        iterations=1,
    )
    assert sum(dist.values()) == pytest.approx(1.0)
    # Paper: Google 37%, Bing 25%, empty 17.76%, compromised 12.84%.
    assert dist["google"] == pytest.approx(0.37, abs=0.10)
    assert dist["bing"] == pytest.approx(0.25, abs=0.10)
    assert dist["google"] > dist["bing"]
    assert dist["google"] + dist["bing"] > 0.5
    assert dist["empty"] + dist["redacted"] > 0.12
    assert dist["compromised"] > 0.05
    assert dist["social"] < 0.03
    save_artifact("fig1", figures.report_fig1(BENCH_SEED, BENCH_SCALE))


def test_bench_fig2(benchmark, save_artifact):
    per_family = benchmark.pedantic(
        figures.run_fig2, args=(BENCH_SEED, BENCH_SCALE), rounds=1,
        iterations=1,
    )
    assert len(per_family) == 10
    lines = ["Fig. 2 (reproduced): per-family enticement distribution"]
    for family, dist in per_family.items():
        assert sum(dist.values()) == pytest.approx(1.0)
        top = max(dist, key=dist.get)
        lines.append(
            f"{family:12s} top={top:11s} "
            + " ".join(f"{k}={v:.2f}" for k, v in dist.items() if v > 0)
        )
    # Search engines consistently rank top for the largest family.
    angler = per_family["Angler"]
    assert angler["google"] + angler["bing"] > 0.4
    save_artifact("fig2", "\n".join(lines))
