"""Bench fig3: regenerate the average graph-property comparison.

Reproduction contract (Section II-C): infection WCGs average more nodes
and higher diameter; lower degree-, closeness-, and betweenness-
centrality; higher load centrality, degree-connectivity, neighbor
degree; lower average PageRank (mean PageRank is 1/order and infections
have more nodes — see repro.features.graph docstring).
"""

from repro.experiments import figures
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_fig3(benchmark, save_artifact):
    data = benchmark.pedantic(
        figures.run_fig3, args=(BENCH_SEED, BENCH_SCALE), rounds=1,
        iterations=1,
    )

    def infection(prop):
        return data[prop]["infection"]

    def benign(prop):
        return data[prop]["benign"]

    # Basic properties: infections bigger and longer.
    assert infection("order") > benign("order")
    assert infection("diameter") > benign("diameter")
    # Centrality: lower for infections except load centrality.
    assert infection("avg_degree_centrality") < \
        benign("avg_degree_centrality")
    assert infection("avg_closeness_centrality") < \
        benign("avg_closeness_centrality")
    assert infection("avg_betweenness_centrality") < \
        benign("avg_betweenness_centrality")
    assert infection("avg_load_centrality") > benign("avg_load_centrality")
    # Connectedness: higher degree-connectivity and neighbor degree.
    assert infection("avg_degree_connectivity") > \
        benign("avg_degree_connectivity")
    assert infection("avg_neighbor_degree") > benign("avg_neighbor_degree")

    save_artifact("fig3", figures.report_fig3(BENCH_SEED, BENCH_SCALE))
