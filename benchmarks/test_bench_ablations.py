"""Ablation benches for the design choices DESIGN.md §5 calls out.

* voting: probability averaging vs majority vote (Section V-A claims
  averaging reduces variance — we check F-score parity-or-better and
  compare fold-to-fold FPR spread);
* forest: N_t / N_f sweep around the paper's tuned (20, log2+1) point;
* threshold: the clue redirect-threshold l as a work valve;
* whitelist: trusted-vendor weeding as a noise valve.
"""

from repro.experiments import ablations
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_ablation_voting(benchmark, save_artifact):
    results = benchmark.pedantic(
        ablations.run_voting, args=(BENCH_SEED, BENCH_SCALE),
        kwargs={"k": 10}, rounds=1, iterations=1,
    )
    average = results["average"]
    majority = results["majority"]
    # Averaging matches or beats majority voting on accuracy.
    assert average["f_score"] >= majority["f_score"] - 0.015
    assert average["roc_area"] >= majority["roc_area"] - 0.01
    save_artifact("ablation_voting",
                  ablations.report_voting(BENCH_SEED, BENCH_SCALE))


def test_bench_ablation_forest(benchmark, save_artifact):
    results = benchmark.pedantic(
        ablations.run_forest_sweep, args=(BENCH_SEED, BENCH_SCALE),
        kwargs={"tree_counts": (5, 20, 40), "k": 5}, rounds=1, iterations=1,
    )
    paper_config = results["Nt=20,Nf=log2+1"]
    tiny = results["Nt=5,Nf=log2+1"]
    # The paper's tuned point performs at least as well as a small
    # ensemble, and more trees do not collapse accuracy.
    assert paper_config["f_score"] >= tiny["f_score"] - 0.01
    assert results["Nt=40,Nf=log2+1"]["f_score"] > 0.9
    save_artifact("ablation_forest",
                  ablations.report_forest_sweep(BENCH_SEED, BENCH_SCALE))


def test_bench_ablation_threshold(benchmark, save_artifact):
    results = benchmark.pedantic(
        ablations.run_threshold_sweep, args=(BENCH_SEED, BENCH_SCALE),
        kwargs={"thresholds": (1, 2, 3, 5, 8)}, rounds=1, iterations=1,
    )
    # More permissive thresholds never classify less.
    work = [results[t]["classifications"] for t in (1, 2, 3, 5, 8)]
    assert all(a >= b for a, b in zip(work, work[1:]))
    # The alert set stays in the paper's ballpark at the paper's l=3.
    assert 3 <= results[3]["alerts"] <= 8
    lines = ["Ablation: clue redirect-threshold sweep (forensic stream)",
             "l  alerts  classifications  watches"]
    for threshold in (1, 2, 3, 5, 8):
        row = results[threshold]
        lines.append(
            f"{threshold}  {row['alerts']:6d}  "
            f"{row['classifications']:15d}  {row['watches']:7d}"
        )
    save_artifact("ablation_threshold", "\n".join(lines))


def test_bench_ablation_whitelist(benchmark, save_artifact):
    results = benchmark.pedantic(
        ablations.run_whitelist, args=(BENCH_SEED, BENCH_SCALE),
        rounds=1, iterations=1,
    )
    with_weeding = results["on"]
    without = results["off"]
    assert with_weeding["weeded"] >= 50  # the injected vendor downloads
    assert without["weeded"] == 0
    # Weeding reduces (or at worst matches) classifier work.
    assert with_weeding["classifications"] <= without["classifications"]
    lines = ["Ablation: trusted-vendor weeding",
             f"on : {with_weeding}",
             f"off: {without}"]
    save_artifact("ablation_whitelist", "\n".join(lines))
