"""Incremental-WCG scaling bench: live maintenance vs. full rebuild.

The on-the-wire hot path used to rebuild the watched session's entire
WCG — re-sort, re-stage, re-infer redirects, re-add every edge — and
re-extract all 37 features (betweenness, load centrality, sampled node
connectivity included) on every meaningful update: quadratic-plus in
session length.  The incremental builder appends into the live graph
with bounded stage re-labelling, and the tiered extractor recomputes
topology features only when the graph *structure* changes.

This bench drives a 1,000-transaction watched session (bounded host
set, redirect run-up, an exploit drop, periodic C&C POSTs — the shape
that keeps a watch under classifier scrutiny) through both pipelines,
extracting features after every update, and asserts the incremental
path is at least an order of magnitude faster end to end with flat
per-update cost.  ``BENCH_ROUNDS=1`` (CI smoke) runs a single round.
"""

import os
import time

import numpy as np
import pytest

from repro.core.builder import WCGBuilder, build_wcg
from repro.core.model import HttpMethod
from repro.features.extractor import FeatureExtractor
from tests.conftest import make_txn

TRANSACTIONS = 1000
ROUNDS = max(1, int(os.environ.get("BENCH_ROUNDS", "3")))

_HOSTS = [f"asset-{index}.example" for index in range(8)]


def _watched_session(count: int):
    """One long watched session: run-up, exploit drop, C&C chatter."""
    txns = [
        make_txn(host="hop.example", uri="/in", ts=100.0, status=302,
                 content_type="",
                 extra_res_headers={"Location": "http://land.example/l"}),
        make_txn(host="land.example", uri="/l", ts=100.05,
                 referrer="http://hop.example/in"),
        make_txn(host="ek.example", uri="/drop.exe", ts=100.1,
                 content_type="application/x-msdownload",
                 referrer="http://land.example/l"),
    ]
    for index in range(count - len(txns)):
        ts = 100.2 + index * 0.05
        if index % 25 == 24:
            txns.append(make_txn(
                host="cnc.example", uri="/beacon", ts=ts,
                method=HttpMethod.POST, content_type="text/plain",
            ))
        else:
            host = _HOSTS[index % len(_HOSTS)]
            txns.append(make_txn(
                host=host, uri=f"/a/{index % 97}", ts=ts,
                referrer="http://land.example/l",
            ))
    return txns


@pytest.fixture(scope="module")
def session():
    txns = _watched_session(TRANSACTIONS)
    assert len(txns) == TRANSACTIONS
    return txns


def _run_incremental(txns):
    """The live path: one builder, one caching extractor, per-update
    extraction of the full 37-vector."""
    builder = WCGBuilder()
    extractor = FeatureExtractor()
    update_times = []
    vector = None
    for txn in txns:
        started = time.perf_counter()
        builder.add(txn)
        vector = extractor.extract(builder.build())
        update_times.append(time.perf_counter() - started)
    return vector, update_times


def _run_rebuild(txns):
    """The seed algorithm: from-scratch build + extraction per update."""
    vector = None
    for count in range(1, len(txns) + 1):
        wcg = build_wcg(txns[:count])
        vector = FeatureExtractor().extract(wcg)
    return vector


def test_bench_incremental_wcg_scaling(benchmark, session):
    incremental_vector, update_times = benchmark.pedantic(
        lambda: _run_incremental(session), rounds=ROUNDS, iterations=1
    )
    incremental_total = benchmark.stats.stats.mean

    started = time.perf_counter()
    rebuild_vector = _run_rebuild(session)
    rebuild_total = time.perf_counter() - started

    # Same stream, same final vector, bit for bit — speed must not buy
    # drift (the differential tests pin this per prefix; the bench pins
    # it at scale).
    assert np.array_equal(incremental_vector, rebuild_vector)

    speedup = rebuild_total / incremental_total
    print(f"\nincremental: {incremental_total * 1e3:.1f} ms, "
          f"rebuild: {rebuild_total * 1e3:.1f} ms "
          f"({speedup:.0f}x) over {len(session)} updates")
    # The acceptance bar: an order of magnitude end-to-end on a
    # 1k-transaction watched session (measured far higher; asserted
    # conservatively).
    assert speedup >= 10

    # Per-update cost must not grow with session length: the last
    # decile of updates may not cost an order of magnitude more than
    # the first — and the first decile *includes* every cold topology
    # computation, so this bound has slack built in.
    decile = max(1, len(update_times) // 10)
    first, last = sum(update_times[:decile]), sum(update_times[-decile:])
    print(f"per-update cost: first decile {first * 1e6:.0f} us, "
          f"last decile {last * 1e6:.0f} us")
    assert last < first * 10
