"""Columnar-WCG bench: vectorized batch extraction vs. the object walk.

The offline pipeline (dataset assembly, detector flushes, snapshot
rebuilds) extracts the 37-vector for *many* graphs at once.  The seed
did that one graph at a time through the networkx object walk — dict
iteration per feature, a fresh auxiliary flow network per connectivity
pair, no sharing between graphs.  The columnar core stores edges as
struct-of-arrays numpy columns, the fast structural kernels replace the
networkx walk bit for bit, and ``extract_batch`` assembles the whole
``(n, 37)`` matrix with vectorized column reductions plus a
content-addressed structural topology cache shared across graphs.

Two contracts, both written to ``benchmarks/out/BENCH_columnar.json``:

* batch extraction of a ~1k-graph corpus is at least **5x** faster than
  the per-graph object walk, with byte-identical output;
* per-edge incremental ``add`` cost stays flat as a live graph grows —
  the amortized-doubling column store must not reintroduce the
  quadratic append the incremental builder removed.

``BENCH_ROUNDS=1`` (CI smoke) runs single rounds; ``REPRO_SCALE``
shrinks the corpus proportionally (default here targets ~1k graphs).
"""

import json
import os
import time

import numpy as np
import pytest

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.core.builder import WCGBuilder, build_wcg
from repro.features.extractor import FeatureExtractor
from repro.synthesis.corpus import ground_truth_corpus
from tests.conftest import make_txn

ROUNDS = max(1, int(os.environ.get("BENCH_ROUNDS", "3")))

#: Corpus scale targeting ~1k graphs at the default ``REPRO_SCALE``
#: (0.25 -> 0.6 -> 1049 ground-truth traces).
CORPUS_SCALE = min(1.0, BENCH_SCALE * 2.4)

EDGES = 2000
_HOSTS = [f"asset-{index}.example" for index in range(11)]


def _merge_section(artifact_dir, section: str, payload: dict) -> None:
    """Merge one section into BENCH_columnar.json (order-independent)."""
    path = artifact_dir / "BENCH_columnar.json"
    doc = {"schema": "bench.columnar.v1", "scale": BENCH_SCALE,
           "seed": BENCH_SEED}
    if path.exists():
        doc.update(json.loads(path.read_text()))
    doc[section] = payload
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"[saved {section} to {path}]")


@pytest.fixture(scope="module")
def graphs():
    corpus = ground_truth_corpus(seed=BENCH_SEED, scale=CORPUS_SCALE)
    return [build_wcg(trace) for trace in corpus.traces]


def _object_walk(graphs):
    """The seed shape: per-graph networkx walk, nothing shared."""
    return np.vstack([
        FeatureExtractor(topology_engine="object").extract(wcg)
        for wcg in graphs
    ])


def test_bench_batch_extraction_vs_object_walk(benchmark, graphs,
                                               artifact_dir):
    # Fresh extractor per round: cold caches, so the measured win is
    # the kernels + vectorized assembly + cross-graph structural
    # sharing, not warm-cache replay.
    matrix = benchmark.pedantic(
        lambda: FeatureExtractor().extract_batch(graphs),
        rounds=ROUNDS, iterations=1,
    )
    batch_seconds = benchmark.stats.stats.mean

    started = time.perf_counter()
    reference = _object_walk(graphs)
    object_seconds = time.perf_counter() - started

    # Speed must not buy drift: the batch matrix equals the object walk
    # bit for bit (the differential tests pin this per prefix; the
    # bench pins it at corpus scale).
    assert matrix.tobytes() == reference.tobytes()

    speedup = object_seconds / batch_seconds
    batch_rps = len(graphs) / batch_seconds
    object_rps = len(graphs) / object_seconds
    print(f"\nbatch: {batch_seconds * 1e3:.1f} ms "
          f"({batch_rps:,.0f} rows/s), object walk: "
          f"{object_seconds * 1e3:.1f} ms ({object_rps:,.0f} rows/s) "
          f"-> {speedup:.1f}x over {len(graphs)} graphs")

    _merge_section(artifact_dir, "batch_extraction", {
        "graphs": len(graphs),
        "batch_seconds": batch_seconds,
        "batch_rows_per_s": batch_rps,
        "object_walk_seconds": object_seconds,
        "object_walk_rows_per_s": object_rps,
        "speedup": speedup,
        "identical": True,
    })

    # The acceptance bar: 5x on ~1k graphs (measured far higher;
    # asserted conservatively).
    assert speedup >= 5


def _long_session(count: int):
    """One long watched session, bounded host set — the live shape."""
    txns = []
    for index in range(count):
        txns.append(make_txn(
            host=_HOSTS[index % len(_HOSTS)],
            uri=f"/a/{index % 89}",
            ts=100.0 + index * 0.05,
            referrer="http://asset-0.example/a/0" if index % 3 else None,
        ))
    return txns


def test_bench_incremental_add_cost_flat(benchmark, artifact_dir):
    txns = _long_session(EDGES)

    def _drive():
        # add() defers; build() ingests the pending txn into the column
        # store — timing both measures the true per-edge append path
        # (including any amortized column reallocation it triggers).
        builder = WCGBuilder()
        times = []
        wcg = None
        for txn in txns:
            started = time.perf_counter()
            builder.add(txn)
            wcg = builder.build()
            times.append(time.perf_counter() - started)
        return wcg, times

    wcg, add_times = benchmark.pedantic(_drive, rounds=ROUNDS, iterations=1)
    assert len(wcg.edge_store) >= EDGES  # redirect edges ride along

    decile = max(1, len(add_times) // 10)
    first = sum(add_times[:decile])
    last = sum(add_times[-decile:])
    mean_us = sum(add_times) / len(add_times) * 1e6
    print(f"\nper-edge add: mean {mean_us:.1f} us, first decile "
          f"{first * 1e6:.0f} us, last decile {last * 1e6:.0f} us "
          f"over {len(add_times)} adds")

    _merge_section(artifact_dir, "incremental_add", {
        "edges": len(add_times),
        "mean_us_per_add": mean_us,
        "first_decile_us": first * 1e6,
        "last_decile_us": last * 1e6,
    })

    # Flat per-edge cost: the last decile of a 2k-edge session may not
    # cost an order of magnitude more than the first — the first
    # *includes* every early column reallocation, so this has slack.
    assert last < first * 10
