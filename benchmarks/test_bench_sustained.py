"""Sustained-load harness: steady-state throughput and hostile soak.

ROADMAP item 2: feed the live detector a long mixed workload from
:mod:`repro.loadgen` and measure what a deployed tap actually cares
about — steady-state packets/sec, p99 per-packet decision latency, and
the memory ceiling — then soak it in purely hostile traffic (overflow
connections, orphan responses, overlapping retransmission storms,
floods, garbage frames) and prove it degrades *visibly* (nonzero
``decode.dropped`` / ``reassembly.overflows``) instead of crashing or
growing without bound.

Both tests append their sections to ``benchmarks/out/BENCH_sustained.json``
(the trajectory artifact CI uploads) and the throughput run streams
telemetry snapshots to ``sustained_stats.jsonl`` via the ``repro.obs``
reporter.  ``REPRO_SCALE`` scales packet counts; ``BENCH_ROUNDS=1``
(CI smoke) is implicit — each test is a single pass by design.
"""

import json
import time
import tracemalloc

import numpy as np

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.detection.detector import OnTheWireDetector
from repro.detection.live import LiveDetector, OverloadPolicy
from repro.experiments.context import trained_classifier
from repro.loadgen import HOSTILE, LoadGenerator
from repro.obs import (
    NULL_TRACER,
    MetricsRegistry,
    PipelineStatsReporter,
    Tracer,
    use_registry,
    use_tracer,
    write_trace,
)

#: Packets per pass (full scale: 200k mixed, 60k hostile).
TOTAL_PACKETS = max(4_000, int(200_000 * BENCH_SCALE))
SOAK_PACKETS = max(3_000, int(60_000 * BENCH_SCALE))
WINDOWS = 10


def _merge_artifact(artifact_dir, section: str, payload: dict) -> None:
    """Merge one section into BENCH_sustained.json (order-independent)."""
    path = artifact_dir / "BENCH_sustained.json"
    doc = {"schema": "bench.sustained.v1",
           "scale": BENCH_SCALE, "seed": BENCH_SEED}
    if path.exists():
        doc.update(json.loads(path.read_text()))
    doc[section] = payload
    path.write_text(json.dumps(doc, indent=2) + "\n")
    print(f"\n[saved {section} to {path}]")


def _drive(detector: LiveDetector, packets) -> tuple[int, list[float], int]:
    """Feed a stream; returns (packets, per-feed seconds, alerts)."""
    fed = 0
    alerts = 0
    feed_times: list[float] = []
    for packet in packets:
        started = time.perf_counter()
        alerts += len(detector.feed(packet))
        feed_times.append(time.perf_counter() - started)
        fed += 1
    started = time.perf_counter()
    alerts += len(detector.finish())
    feed_times.append(time.perf_counter() - started)
    return fed, feed_times, alerts


def test_bench_sustained_throughput(artifact_dir):
    """Mixed workload at line rate: pps trajectory, p99 latency, memory."""
    classifier = trained_classifier(BENCH_SEED, BENCH_SCALE)

    # Timed pass: metrics off (NullRegistry), no tracing — clean timing.
    generator = LoadGenerator(seed=BENCH_SEED, concurrency=8)
    detector = LiveDetector(OnTheWireDetector(classifier),
                            book=generator.book)
    fed, feed_times, alerts = _drive(
        detector, generator.packets(limit=TOTAL_PACKETS)
    )
    assert fed == TOTAL_PACKETS
    assert detector.transactions_emitted > 0

    # Per-window trajectory; steady state excludes the warm-up window.
    window = max(1, fed // WINDOWS)
    windows = []
    for index in range(0, fed - window + 1, window):
        chunk = feed_times[index : index + window]
        windows.append({
            "packets": len(chunk),
            "pps": len(chunk) / max(sum(chunk), 1e-9),
            "p99_ms": float(np.percentile(chunk, 99)) * 1e3,
        })
    steady = windows[1:] or windows
    steady_pps = (
        sum(w["packets"] for w in steady)
        / max(sum(w["packets"] / w["pps"] for w in steady), 1e-9)
    )
    p99_ms = float(np.percentile(feed_times[window:] or feed_times, 99)) * 1e3

    # Traced pass (shorter): the memory ceiling of the whole tap —
    # generator + reassembly + pairing + detector state together.
    tracemalloc.start()
    traced_gen = LoadGenerator(seed=BENCH_SEED + 1, concurrency=8)
    registry = MetricsRegistry()
    with use_registry(registry):
        traced = LiveDetector(OnTheWireDetector(classifier),
                              book=traced_gen.book)
        _drive(traced, traced_gen.packets(limit=TOTAL_PACKETS // 2))
        reporter = PipelineStatsReporter(
            registry=registry, out=str(artifact_dir / "sustained_stats.jsonl")
        )
        snapshot = reporter.finalize()
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    print(f"\nsustained: {steady_pps:,.0f} pkt/s steady-state, "
          f"p99 {p99_ms:.2f} ms, peak {peak_bytes / 2**20:.1f} MiB "
          f"over {fed:,} packets ({alerts} alerts)")
    _merge_artifact(artifact_dir, "sustained", {
        "packets": fed,
        "transactions": detector.transactions_emitted,
        "alerts": alerts,
        "steady_state_pps": steady_pps,
        "p99_decision_latency_ms": p99_ms,
        "peak_traced_bytes": peak_bytes,
        "windows": windows,
        "counters": {
            k: v for k, v in sorted(snapshot["counters"].items())
        },
    })

    # Conservative floors (measured ~10x higher locally): regressions
    # that destroy throughput or latency fail loudly, noise does not.
    assert steady_pps > 1_000
    assert p99_ms < 50.0
    # Memory ceiling: the tap must not retain the stream.  Budget scales
    # with the (bounded) live state, not with packets fed.
    assert peak_bytes < 512 * 2**20


def test_bench_tracing_overhead(artifact_dir):
    """Tracing must observe, not tax: identical workload with the null
    tracer vs a recording tracer (``"alerts"`` sampling, the deployment
    mode); the enabled pass may cost a few percent of pkt/s, the
    disabled pass *is* the baseline (the differential tests prove its
    outputs byte-identical).  The recorded trace ships as a CI artifact
    next to the stats JSONL."""
    classifier = trained_classifier(BENCH_SEED, BENCH_SCALE)
    packets = TOTAL_PACKETS // 2
    passes = {}
    trace_path = artifact_dir / "sustained_trace.jsonl"
    for label, tracer in (("off", NULL_TRACER),
                          ("on", Tracer(sample="alerts"))):
        generator = LoadGenerator(seed=BENCH_SEED, concurrency=8)
        with use_tracer(tracer):
            detector = LiveDetector(OnTheWireDetector(classifier),
                                    book=generator.book)
            started = time.perf_counter()
            fed, _, alerts = _drive(
                detector, generator.packets(limit=packets)
            )
            elapsed = time.perf_counter() - started
        assert fed == packets
        passes[label] = {
            "pps": fed / max(elapsed, 1e-9),
            "alerts": alerts,
            "events": tracer.event_count,
        }
        if tracer.enabled:
            events = tracer.drain()
            trace_path.write_text("")  # fresh artifact per run
            passes[label]["trace_lines"] = write_trace(
                events, str(trace_path)
            )

    # Same stream, same verdicts — only the observer changed.
    assert passes["on"]["alerts"] == passes["off"]["alerts"]
    assert passes["on"]["alerts"] > 0, "workload never alerted"
    assert passes["on"]["trace_lines"] > 0

    overhead = passes["off"]["pps"] / max(passes["on"]["pps"], 1e-9) - 1.0
    print(f"\ntracing overhead: {passes['off']['pps']:,.0f} pkt/s off, "
          f"{passes['on']['pps']:,.0f} pkt/s on "
          f"({overhead:+.1%}, {passes['on']['trace_lines']} trace lines)")
    _merge_artifact(artifact_dir, "tracing_overhead", {
        "packets": packets,
        "pps_off": passes["off"]["pps"],
        "pps_on": passes["on"]["pps"],
        "overhead_fraction": overhead,
        "alerts": passes["on"]["alerts"],
        "trace_lines": passes["on"]["trace_lines"],
        "sample": "alerts",
    })
    # Acceptance says <5%; the tripwire is generous because smoke-scale
    # runs on shared CI runners are noisy — it catches a tracing path
    # that turned accidentally hot, not scheduler jitter.
    assert overhead < 0.25


def test_bench_hostile_soak(artifact_dir):
    """Pure hostile traffic with tight caps: degrade visibly, never die."""
    classifier = trained_classifier(BENCH_SEED, BENCH_SCALE)
    generator = LoadGenerator(
        seed=BENCH_SEED, mix=HOSTILE, concurrency=10,
        overflow_bytes=128 * 1024,
    )
    # The connection cap counts *live* connections (closed ones are
    # evicted after their linger), so forcing the shed pathway to fire
    # needs a cap below the workload's genuine live concurrency — not
    # the historical total-connection count the old leaky semantics
    # tripped on.  The linger is tight for the same reason: the smoke-
    # scale stream spans only seconds of stream time, and the eviction
    # pathway must demonstrably churn within it.
    policy = OverloadPolicy(
        max_connections=8,
        max_buffered_per_direction=32 * 1024,
        closed_linger=2.0,
    )

    tracemalloc.start()
    registry = MetricsRegistry()
    with use_registry(registry):
        detector = LiveDetector(OnTheWireDetector(classifier),
                                book=generator.book, policy=policy)
        fed, feed_times, alerts = _drive(
            detector, generator.packets(limit=SOAK_PACKETS)
        )
        snapshot = registry.snapshot()
    _, peak_bytes = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    counters = snapshot["counters"]
    p99_ms = float(np.percentile(feed_times, 99)) * 1e3
    print(f"\nhostile soak: {fed:,} packets, peak "
          f"{peak_bytes / 2**20:.1f} MiB, p99 {p99_ms:.2f} ms; "
          f"overflows={counters['reassembly.overflows']} "
          f"dropped={counters['decode.dropped']} "
          f"orphans={counters['http.orphan_responses']} "
          f"errors={counters['decode.errors']}")
    _merge_artifact(artifact_dir, "hostile_soak", {
        "packets": fed,
        "transactions": detector.transactions_emitted,
        "alerts": alerts,
        "p99_decision_latency_ms": p99_ms,
        "peak_traced_bytes": peak_bytes,
        "policy": {
            "max_connections": policy.max_connections,
            "max_buffered_per_direction":
                policy.max_buffered_per_direction,
            "closed_linger": policy.closed_linger,
        },
        "counters": {k: v for k, v in sorted(counters.items())},
    })

    # The soak completed (no uncaught exception reached here) and every
    # degradation pathway actually fired and was counted.
    assert fed == SOAK_PACKETS
    assert counters["reassembly.overflows"] > 0, "overflow shed never fired"
    assert counters["decode.dropped"] > 0, "connection-cap shed never fired"
    assert counters["http.orphan_responses"] > 0, "orphans not counted"
    assert counters["decode.errors"] > 0, "malformed frames not counted"
    assert counters["decode.evicted_connections"] > 0, \
        "connection lifecycle never reclaimed state"
    # Bounded memory: hostile load may not accumulate state without
    # limit.  The budget covers capped live state at full scale.
    assert peak_bytes < 256 * 2**20
