"""Sharded-service scaling: pkt/s vs worker count, with parity proof.

ROADMAP item 1's measurement: replay one pre-captured MIXED workload
through the single-process :class:`~repro.detection.live.LiveDetector`
(the reference) and through the sharded daemon at 1, 2, and 4 workers,
recording packets/sec for each and asserting the merged fleet alert
stream is byte-identical to the reference every time — the scaling
numbers are only meaningful if the answers never change.

Results land in ``benchmarks/out/BENCH_shards.json`` (uploaded by CI
alongside ``BENCH_sustained.json``).  No speedup floor is asserted:
worker processes pay pickling and queue costs that only amortize at
line-rate packet volumes, and CI smoke scale is far below that — the
artifact records the trajectory, the tests enforce correctness.
"""

import json
import time

from benchmarks.conftest import BENCH_SCALE, BENCH_SEED
from repro.detection.detector import OnTheWireDetector
from repro.detection.live import LiveDetector
from repro.experiments.context import trained_classifier
from repro.loadgen import MIXED, LoadGenerator
from repro.service import EngineSpec, ShardedDetectionService, merge_alerts
from repro.service.worker import ShardAlert

#: Packets per pass (full scale: 60k mixed).  The floor is set where
#: the MIXED stream has completed enough exploit-kit episodes for the
#: reference run to alert — parity over an empty alert set is vacuous.
TOTAL_PACKETS = max(6_000, int(60_000 * BENCH_SCALE))
WORKER_COUNTS = (1, 2, 4)


def _canonical(alerts):
    """Single-process emission order -> fleet-canonical merge order."""
    return merge_alerts(
        ShardAlert(0, i, alert) for i, alert in enumerate(alerts)
    )


def test_bench_shard_scaling(artifact_dir):
    classifier = trained_classifier(BENCH_SEED, BENCH_SCALE)
    generator = LoadGenerator(seed=BENCH_SEED, mix=MIXED, concurrency=8)
    # Pre-capture so every run replays identical packets against the
    # identical (fully populated) address book.
    packets = generator.capture(TOTAL_PACKETS)
    book = generator.book

    started = time.perf_counter()
    reference = LiveDetector(OnTheWireDetector(classifier), book=book)
    for packet in packets:
        reference.feed(packet)
    reference.finish()
    single_seconds = time.perf_counter() - started
    ref_alerts = _canonical(reference.detector.alerts)
    single_pps = len(packets) / max(single_seconds, 1e-9)
    print(f"\nsingle-process: {single_pps:,.0f} pkt/s "
          f"({len(ref_alerts)} alerts, "
          f"{reference.transactions_emitted} transactions)")

    rows = []
    for workers in WORKER_COUNTS:
        spec = EngineSpec(classifier=classifier, book=book)
        service = ShardedDetectionService(spec, workers=workers)
        started = time.perf_counter()
        with service:
            for packet in packets:
                service.feed(packet)
            fleet = service.drain()
        seconds = time.perf_counter() - started
        pps = len(packets) / max(seconds, 1e-9)
        identical = fleet.alerts == ref_alerts
        rows.append({
            "workers": workers,
            "pps": pps,
            "seconds": seconds,
            "alerts": len(fleet.alerts),
            "alerts_identical": identical,
            "speedup_vs_single": pps / max(single_pps, 1e-9),
        })
        print(f"workers={workers}: {pps:,.0f} pkt/s "
              f"(x{pps / max(single_pps, 1e-9):.2f} vs single, "
              f"identical={identical})")
        # Parity is the hard contract; fail fast with the worker count.
        assert identical, f"alert stream diverged at workers={workers}"
        assert fleet.packets_routed == len(packets)

    path = artifact_dir / "BENCH_shards.json"
    path.write_text(json.dumps({
        "schema": "bench.shards.v1",
        "scale": BENCH_SCALE,
        "seed": BENCH_SEED,
        "packets": len(packets),
        "transactions": reference.transactions_emitted,
        "alerts": len(ref_alerts),
        "single_process_pps": single_pps,
        "workers": rows,
    }, indent=2) + "\n")
    print(f"[saved shard scaling to {path}]")

    assert len(ref_alerts) > 0, "vacuous parity: workload never alerted"
