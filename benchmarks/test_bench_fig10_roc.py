"""Bench fig10: regenerate the ERF ROC curve (Figure 10).

Reproduction contract: pooled out-of-fold ROC over the ground truth has
an area near the paper's 0.978 and passes close to the paper's
operating point (TPR ~0.97 at FPR ~0.015).
"""

import numpy as np

from repro.experiments import fig10
from benchmarks.conftest import BENCH_SCALE, BENCH_SEED


def test_bench_fig10(benchmark, save_artifact):
    data = benchmark.pedantic(
        fig10.run, args=(BENCH_SEED, BENCH_SCALE), kwargs={"k": 10},
        rounds=1, iterations=1,
    )
    fpr, tpr = data["fpr"], data["tpr"]

    assert data["auc"] > 0.96  # paper ROC area: 0.978
    # Curve validity.
    assert np.all(np.diff(fpr) >= 0)
    assert np.all(np.diff(tpr) >= 0)
    # The paper's operating point: TPR >= 0.95 reachable at FPR <= 0.05.
    reachable = tpr[fpr <= 0.05]
    assert reachable.size and reachable.max() >= 0.93

    save_artifact("fig10", fig10.report(BENCH_SEED, BENCH_SCALE))
