#!/usr/bin/env python3
"""Figure 6 walk-through: anatomy of one Angler-kit infection WCG.

Generates a single Angler episode, builds its Web Conversation Graph,
and prints the three conversation stages the paper's Figure 6
illustrates: pre-download redirection, payload download, and
post-download C&C call-backs.

Run:  python examples/angler_wcg.py
"""

from __future__ import annotations

import numpy as np

from repro.core.builder import build_wcg
from repro.core.stages import Stage
from repro.core.wcg import EdgeKind, NodeKind
from repro.features.extractor import extract_features
from repro.features.registry import FEATURES
from repro.synthesis.families import family_by_name
from repro.synthesis.infection import EpisodeConfig, InfectionGenerator


def main() -> None:
    rng = np.random.default_rng(2015_12_21)  # the Figure 6 capture date
    generator = InfectionGenerator(family_by_name("Angler"), rng)
    trace = generator.generate(
        EpisodeConfig(redirectless=False, with_post_download=True)
    )
    wcg = build_wcg(trace)

    print(f"Angler episode: {len(trace.transactions)} transactions, "
          f"{trace.duration:.1f} s lifetime")
    print(f"WCG: {wcg.order} nodes, {wcg.size} edges, "
          f"origin = {wcg.origin!r}\n")

    print("Nodes:")
    for host in wcg.hosts():
        data = wcg.node_data(host)
        marker = {
            NodeKind.ORIGIN: "(origin)",
            NodeKind.VICTIM: "(victim)",
            NodeKind.MALICIOUS: "(MALICIOUS - served exploit payload)",
            NodeKind.REDIRECTOR: "(redirect intermediary)",
        }.get(data.kind, "")
        uris = f", {len(data.uris)} URIs" if data.uris else ""
        print(f"  {host:40s} {marker}{uris}")

    stage_names = {
        Stage.PRE_DOWNLOAD: "pre-download  (redirection run-up)",
        Stage.DOWNLOAD: "download      (exploit delivery)",
        Stage.POST_DOWNLOAD: "post-download (C&C call-backs)",
    }
    for stage, label in stage_names.items():
        edges = wcg.stage_edges(stage)
        print(f"\n{label}: {len(edges)} edges")
        for source, target, data in edges[:6]:
            detail = ""
            if data.kind is EdgeKind.REQUEST:
                detail = f"{data.method} len(uri)={data.uri_length}"
            elif data.kind is EdgeKind.RESPONSE:
                ptype = data.payload_type.value if data.payload_type else "-"
                detail = f"HTTP {data.status} {ptype} {data.payload_size}B"
            elif data.kind is EdgeKind.REDIRECT:
                detail = f"redirect via {data.redirect_kind}"
            print(f"  {source} -> {target}  [{data.kind.value}] {detail}")
        if len(edges) > 6:
            print(f"  ... and {len(edges) - 6} more")

    print("\nTop-level payload-agnostic features (Table II):")
    vector = extract_features(wcg)
    for spec, value in list(zip(FEATURES, vector))[:12]:
        print(f"  {spec.fid:4s} {spec.name:28s} = {value:.4f}")
    print("  ...")


if __name__ == "__main__":
    main()
