#!/usr/bin/env python3
"""Case Study 1: forensic detection on a streaming-site capture.

Rebuilds the paper's Section VI-C scenario — a 90-minute free-live-
streaming session (3,011 HTTP transactions, 18 tabs, fake "player
update" lures) — replays it through DynaMiner with the paper's redirect
threshold of 3, and compares against the simulated VirusTotal,
including the 11-day resubmission of the content-borne PDF.

Run:  python examples/forensic_replay.py
"""

from __future__ import annotations

from repro.detection.clues import CluePolicy
from repro.detection.detector import OnTheWireDetector
from repro.detection.proxy import TrafficReplay
from repro.experiments.context import trained_classifier
from repro.synthesis.casestudy import forensic_streaming_session
from repro.vtsim.engines import DAY, PayloadSample
from repro.vtsim.virustotal import VirusTotalSim


def main() -> None:
    print("Building the streaming-session capture ...")
    session = forensic_streaming_session(seed=2016)
    print(f"  {session.transaction_count} transactions, "
          f"{len(session.downloads)} downloads, "
          f"{session.infectious_episodes} infectious episodes hidden inside")

    print("Training the classifier (cached across runs of one process) ...")
    classifier = trained_classifier(seed=7, scale=0.2)

    print("Replaying through DynaMiner (redirect threshold = 3) ...")
    detector = OnTheWireDetector(
        classifier, policy=CluePolicy(redirect_threshold=3)
    )
    report = TrafficReplay(detector).run(session.trace)
    print(f"  -> {report.alert_count} alerts "
          f"({report.classifications} classifier consultations over "
          f"{report.watches} watched sessions)")
    for alert in report.alerts:
        print(f"     alert: {alert.clue.server} "
              f"({alert.clue.payload_type.value}), score={alert.score:.2f}, "
              f"WCG {alert.wcg_order} nodes / {alert.wcg_size} edges")

    print("\nSubmitting all downloads to the simulated VirusTotal ...")
    vt = VirusTotalSim()
    start = session.trace.transactions[0].timestamp
    flagged = 0
    pdf_sample = None
    for record in session.downloads:
        sample = PayloadSample(
            sha256=record.sha256, malicious=record.malicious,
            content_borne=record.content_borne,
            first_seen=start - (0.0 if record.content_borne else 30 * DAY),
            fresh=record.content_borne,
        )
        if vt.scan(sample, start + 3600).flagged():
            flagged += 1
        if record.content_borne and pdf_sample is None:
            pdf_sample = sample
    print(f"  VirusTotal flags {flagged}/{len(session.downloads)} "
          f"downloads at capture time")

    if pdf_sample is not None:
        day0 = vt.scan(pdf_sample, start + 3600).positives
        day11 = vt.scan(pdf_sample, start + 11 * DAY).positives
        print(f"\nThe content-borne PDF (embedded Flash exploit):")
        print(f"  at capture:    {day0}/56 engines flag it")
        print(f"  11 days later: {day11}/56 engines flag it")
        print("  DynaMiner alerted on its conversation at capture time —")
        print("  an 11-day detection lead over the AV ensemble "
              "(paper, Section VI-C).")


if __name__ == "__main__":
    main()
