#!/usr/bin/env python3
"""Bytes-on-the-wire round trip: synthetic infection -> pcap -> verdict.

Shows the full substrate DESIGN.md §3 describes: a synthetic RIG-kit
episode is serialized into a real ``.pcap`` file (Ethernet/IPv4/TCP with
valid checksums and handshakes), read back through our from-scratch
pcap reader, TCP reassembler, and HTTP/1.1 parser, rebuilt into a WCG,
and classified.

Run:  python examples/pcap_roundtrip.py [output.pcap]
"""

from __future__ import annotations

import os
import sys
import tempfile

import numpy as np

from repro.core.builder import build_wcg
from repro.experiments.context import trained_classifier
from repro.features.extractor import FeatureExtractor
from repro.net.flows import packets_from_trace, transactions_from_packets
from repro.net.pcap import read_pcap, write_pcap
from repro.synthesis.families import family_by_name
from repro.synthesis.infection import InfectionGenerator


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else os.path.join(
        tempfile.gettempdir(), "rig_infection.pcap"
    )

    print("1. Generating a RIG exploit-kit infection episode ...")
    generator = InfectionGenerator(
        family_by_name("RIG"), np.random.default_rng(2016)
    )
    trace = generator.generate()
    print(f"   {len(trace.transactions)} HTTP transactions, "
          f"{len(trace.hosts)} hosts, enticement via "
          f"{trace.meta['enticement']}")

    print(f"2. Serializing to {path} ...")
    packets, book = packets_from_trace(trace)
    count = write_pcap(path, packets)
    size = os.path.getsize(path)
    print(f"   {count} packets, {size} bytes on disk")

    print("3. Reading the pcap back through the full decode stack ...")
    linktype, loaded = read_pcap(path)
    transactions = transactions_from_packets(loaded, linktype, book)
    print(f"   linktype={linktype}, {len(transactions)} transactions "
          f"recovered (HTTP parsed from reassembled TCP streams)")

    print("4. Rebuilding the Web Conversation Graph ...")
    wcg = build_wcg(transactions, victim=trace.transactions[0].client)
    print(f"   {wcg}")
    print(f"   post-download dynamics: "
          f"{wcg.has_post_download_dynamics()}")

    print("5. Classifying ...")
    classifier = trained_classifier(seed=7, scale=0.2)
    features = FeatureExtractor().extract(wcg).reshape(1, -1)
    score = float(classifier.decision_scores(features)[0])
    verdict = "INFECTION" if score >= 0.5 else "benign"
    print(f"   ERF score = {score:.3f}  ->  {verdict}")


if __name__ == "__main__":
    main()
