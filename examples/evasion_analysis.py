#!/usr/bin/env python3
"""Section VII, measured: how evasion strategies fare against DynaMiner.

The paper *discusses* how a determined adversary might evade the
classifier (cloaked downloads, cloaked redirections, post-download
tweaks).  This example measures those strategies against a classifier
that has never seen the evasive behaviour — the zero-day setting the
discussion assumes.

Run:  python examples/evasion_analysis.py
"""

from __future__ import annotations

from repro.experiments import evasion


def main() -> None:
    print("Training a classifier on a stealth-free ground truth,")
    print("then attacking it with each Section VII evasion strategy ...\n")
    results = evasion.run(seed=7, scale=0.2, episodes_per_mode=50)

    width = max(len(mode) for mode in results)
    for mode, metrics in results.items():
        score = metrics["mean_score"]
        bar = "#" * int(round(score * 40))
        print(f"  {mode.ljust(width)}  {bar} score={score:.2f} "
              f"(detected {metrics['detection_rate']:.0%})")

    print("\nReading the result against the paper's predictions:")
    print("  - Cloaking a single dynamic (redirects, call-backs, payload")
    print("    type) barely dents detection: the ERF's probability")
    print("    averaging keeps partial evidence decisive (Section VII,")
    print("    'Cloaked download dynamics').")
    print("  - Cloaking everything at once — the fileless-infection")
    print("    approximation — collapses detection: 'the resulting WCG")
    print("    will miss the most revealing features.'")


if __name__ == "__main__":
    main()
