#!/usr/bin/env python3
"""Quickstart: train DynaMiner and stream traffic through it.

Builds a (reduced-scale) ground-truth corpus, trains the paper's
Ensemble Random Forest on the 37 payload-agnostic WCG features, and
deploys the on-the-wire detector over a few previously unseen episodes.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import quick_detector
from repro.detection.detector import OnTheWireDetector
from repro.features.extractor import extract_matrix
from repro.learning.metrics import evaluate_scores
from repro.synthesis.corpus import ground_truth_corpus


def main() -> None:
    print("== 1. Train on a ground-truth corpus (Table I composition) ==")
    detector, training_corpus = quick_detector(seed=7, scale=0.2)
    print(f"   corpus: {len(training_corpus.benign)} benign, "
          f"{len(training_corpus.infections)} infections "
          f"across {len(training_corpus.families)} exploit-kit families")
    print(f"   classifier: {len(detector.classifier.trees_)} trees, "
          f"probability-averaging vote")

    print("\n== 2. Offline accuracy on an unseen draw ==")
    unseen = ground_truth_corpus(seed=99, scale=0.05)
    X, y = extract_matrix(unseen.traces)
    metrics = evaluate_scores(y, detector.classifier.decision_scores(X))
    print(f"   TPR={metrics['tpr']:.3f}  FPR={metrics['fpr']:.3f}  "
          f"F-score={metrics['f_score']:.3f}  "
          f"ROC area={metrics['roc_area']:.3f}")
    print("   (paper: TPR 0.973, FPR 0.015, F 0.972, ROC 0.978)")

    print("\n== 3. On-the-wire detection, transaction by transaction ==")
    for trace in unseen.infections[:3]:
        live = OnTheWireDetector(detector.classifier)
        alerts = live.process_stream(trace.transactions)
        live.finalize()
        verdict = "ALERT" if live.alerts or alerts else "missed"
        stealth = " (stealth episode)" if trace.meta.get("stealth") else ""
        print(f"   {trace.family:12s} {len(trace.transactions):3d} txns "
              f"-> {verdict}{stealth}")
    for trace in unseen.benign[:3]:
        live = OnTheWireDetector(detector.classifier)
        alerts = live.process_stream(trace.transactions)
        live.finalize()
        verdict = "false alert!" if live.alerts or alerts else "clean"
        print(f"   benign/{trace.meta.get('scenario', '?'):10s} "
              f"{len(trace.transactions):3d} txns -> {verdict}")


if __name__ == "__main__":
    main()
