#!/usr/bin/env python3
"""Case Study 2: live detection as a mini-enterprise web proxy.

Rebuilds the paper's Section VI-D deployment: DynaMiner in the proxy
position of a three-host network (Windows/IE, Ubuntu/Firefox,
MacOS/Chrome) over a 48-hour browsing window, reporting the Table VI
per-host download mix and alert breakdown.

Run:  python examples/live_enterprise.py
"""

from __future__ import annotations

from repro.detection.clues import CluePolicy
from repro.detection.detector import OnTheWireDetector
from repro.detection.proxy import ProxySimulator
from repro.experiments.context import trained_classifier
from repro.synthesis.casestudy import enterprise_live_session

HOSTS = ("win-host", "ubuntu-host", "macos-host")


def main() -> None:
    print("Building the 48-hour mini-enterprise stream ...")
    session = enterprise_live_session(seed=48)
    print(f"  {session.transaction_count} transactions across "
          f"{len(session.clients)} hosts, "
          f"{len(session.downloads)} downloads, "
          f"{session.infectious_episodes} infectious episodes")

    classifier = trained_classifier(seed=7, scale=0.2)
    detector = OnTheWireDetector(
        classifier, policy=CluePolicy(redirect_threshold=3)
    )
    print("Running the proxy ...")
    report = ProxySimulator(detector).run([session.trace])

    print(f"\nTable VI-style summary ({report.alert_count} alerts total):")
    header = f"{'':24s}" + "".join(f"{h:>14s}" for h in HOSTS)
    print(header)
    by_host: dict[str, dict[str, int]] = {h: {} for h in HOSTS}
    for record in session.downloads:
        counts = by_host.setdefault(record.client, {})
        counts[record.extension] = counts.get(record.extension, 0) + 1
    for ext in ("pdf", "exe", "jar", "swf", "dmg", "zip"):
        row = f"{ext.upper():24s}"
        for host in HOSTS:
            row += f"{by_host[host].get(ext, 0):>14d}"
        print(row)
    row = f"{'DynaMiner alerts':24s}"
    for host in HOSTS:
        row += f"{len(report.alerts_for(host)):>14d}"
    print(row)

    pdf_misses = [
        d for d in session.downloads if d.content_borne and d.malicious
    ]
    print(f"\nContent-borne malicious PDFs on win-host: {len(pdf_misses)}")
    print("DynaMiner (payload-agnostic) issues no alert for these — their")
    print("maliciousness lives in embedded Flash, not in conversation")
    print("dynamics.  The paper observed exactly this miss (Section VI-D).")


if __name__ == "__main__":
    main()
